// Package plan chooses a join execution plan from cheap input statistics.
//
// The repo has two native in-memory engines with different failure modes:
// the grid-partitioned engine (internal/partjoin) wins on small rectangles
// but replicates large ones into every overlapped tile, and the tree
// engine (R*-tree build + internal/parnative) is insensitive to rectangle
// size but pays a construction phase. Within the partition engine, the
// adaptive tile refinement pass helps exactly when tile occupancy is
// skewed and is a (small) waste of a scan when it is not. Analyze probes
// both inputs with a single coarse grid pass — O(n), no sorting, no tree —
// and Decide maps those statistics to an engine, grid resolution,
// refinement threshold and worker count.
package plan

import (
	"fmt"
	"math"

	"spjoin/internal/estimate"
	"spjoin/internal/partjoin"
	"spjoin/internal/rtree"
	"spjoin/internal/stats"
)

// Engine selects which join implementation executes the plan.
type Engine int

const (
	// EnginePartition is the grid-partitioned native engine
	// (internal/partjoin), the default for small-rectangle workloads.
	EnginePartition Engine = iota
	// EngineTree bulk-loads R*-trees and runs the work-stealing native
	// tree join (internal/parnative).
	EngineTree
)

func (e Engine) String() string {
	switch e {
	case EnginePartition:
		return "partition"
	case EngineTree:
		return "tree"
	}
	return fmt.Sprintf("Engine(%d)", int(e))
}

// probeGrid is the fixed side of the statistics grid. 16×16 = 256 cells
// is coarse enough that one pass over the centers costs nothing and fine
// enough to expose cluster hot spots and replication of mid-sized
// rectangles. tiger.OccupancySkew uses the same convention, so generator
// tests and planner inputs agree on what "skew 20" means.
const probeGrid = 16

// Stats are the input statistics Decide works from. All figures come from
// one O(NR+NS) pass over the rectangles; nothing is sorted or built.
type Stats struct {
	NR, NS int     // input cardinalities
	Skew   float64 // probe-tile occupancy skew: max/mean over all cells, both sides pooled
	Rep    float64 // mean probe tiles overlapped per rectangle (replication factor)
	Probe  int     // probe grid side the figures were measured on
	// Selectivity is the estimated pair probability from the §3.4 model
	// (internal/estimate): expected candidates ≈ NR·NS·Selectivity. It does
	// not drive Decide yet, but is recorded with every captured plan so the
	// flight recorder can show estimate-vs-actual drift.
	Selectivity float64
}

// Analyze computes Stats with a single pass over both inputs: the joint
// finite MBR, then per-cell center-point occupancy (for Skew) and the
// count of probe cells each rectangle overlaps (for Rep). Rectangles with
// NaN coordinates or inverted extents are skipped — they join with
// nothing and should not distort the plan.
func Analyze(r, s []rtree.Item) Stats {
	st := Stats{NR: len(r), NS: len(s), Probe: probeGrid}
	minX, minY := math.Inf(1), math.Inf(1)
	maxX, maxY := math.Inf(-1), math.Inf(-1)
	valid := 0
	var sides [2]estimate.SetStats
	for k, side := range [2][]rtree.Item{r, s} {
		sides[k] = estimate.AnalyzeSet(side)
		for i := range side {
			rc := &side[i].Rect
			if !(rc.MinX <= rc.MaxX && rc.MinY <= rc.MaxY) {
				continue // NaN or empty: joins with nothing
			}
			valid++
			minX = math.Min(minX, rc.MinX)
			minY = math.Min(minY, rc.MinY)
			maxX = math.Max(maxX, rc.MaxX)
			maxY = math.Max(maxY, rc.MaxY)
		}
	}
	st.Selectivity = estimate.Selectivity(sides[0], sides[1])
	if valid == 0 {
		st.Skew, st.Rep = 1, 1
		return st
	}
	invW := safeProbeInv(maxX - minX)
	invH := safeProbeInv(maxY - minY)
	counts := make([]float64, probeGrid*probeGrid)
	tilesSum := 0.0
	for _, side := range [2][]rtree.Item{r, s} {
		for i := range side {
			rc := &side[i].Rect
			if !(rc.MinX <= rc.MaxX && rc.MinY <= rc.MaxY) {
				continue
			}
			cx := clampProbe(int(((rc.MinX+rc.MaxX)/2 - minX) * invW))
			cy := clampProbe(int(((rc.MinY+rc.MaxY)/2 - minY) * invH))
			counts[cy*probeGrid+cx]++
			lox := clampProbe(int((rc.MinX - minX) * invW))
			hix := clampProbe(int((rc.MaxX - minX) * invW))
			loy := clampProbe(int((rc.MinY - minY) * invH))
			hiy := clampProbe(int((rc.MaxY - minY) * invH))
			tilesSum += float64((hix - lox + 1) * (hiy - loy + 1))
		}
	}
	st.Skew = stats.Summarize(counts).Skew()
	st.Rep = tilesSum / float64(valid)
	return st
}

// Tuning thresholds for Decide. They are deliberately coarse: the planner
// only needs to stay out of each engine's failure mode, not find the
// optimum — the ≤1.5×-of-best regression test in plan_test.go pins that
// contract.
const (
	// treeRep is the replication factor above which partitioning is
	// abandoned: each rectangle landing in >3 probe tiles means the grid
	// would mostly shuffle duplicates around. (Tiny inputs stay on the
	// partition engine too — a measured one-shot partition join beats a
	// tree build even at a few hundred rectangles.)
	treeRep = 3.0
	// refineSkew is the occupancy skew above which tile refinement is
	// enabled (auto threshold). Uniform data probes ≈1.3; clustered data
	// starts around 4 and climbs past 60 — 2.5 splits the two regimes.
	refineSkew = 2.5
	// workerShare is the number of rectangles that justifies one more
	// worker before the maxWorkers cap.
	workerShare = 16 << 10
)

// Decision is an executable plan: which engine, and with what knobs.
type Decision struct {
	Engine          Engine
	Grid            int   // partition grid side (0 for the tree engine)
	RefineThreshold int64 // partjoin.Config.RefineThreshold (0 auto, RefineDisabled off)
	Workers         int
}

func (d Decision) String() string {
	if d.Engine == EngineTree {
		return fmt.Sprintf("engine=tree workers=%d", d.Workers)
	}
	ref := "off"
	switch {
	case d.RefineThreshold == 0:
		ref = "auto"
	case d.RefineThreshold > 0:
		ref = fmt.Sprintf("%d", d.RefineThreshold)
	}
	return fmt.Sprintf("engine=partition grid=%dx%d refine=%s workers=%d",
		d.Grid, d.Grid, ref, d.Workers)
}

// Decide maps input statistics to a plan. maxWorkers caps parallelism
// (≤0 means 1). The rules, in order:
//
//   - heavy replication → tree engine;
//   - otherwise the partition engine at its auto grid, with tile
//     refinement switched to auto exactly when the probe grid saw a
//     skewed occupancy (refinement on uniform data is a wasted scan,
//     refinement on clustered data is worth >1.5× — see
//     TestRefinedBeatsUnrefinedClustered).
func Decide(st Stats, maxWorkers int) Decision {
	if maxWorkers <= 0 {
		maxWorkers = 1
	}
	n := st.NR + st.NS
	workers := n / workerShare
	if workers < 1 {
		workers = 1
	}
	if workers > maxWorkers {
		workers = maxWorkers
	}
	if st.Rep > treeRep {
		return Decision{Engine: EngineTree, Workers: workers}
	}
	// The grid choice is skew-aware: the planner runs before the first
	// (cold, pipelined) join, where a clustered workload would otherwise
	// start from the uniform-data grid and lean entirely on refinement to
	// recover. Uniform probes (skew ≤ 2.5) resolve to plain AutoGrid.
	d := Decision{
		Engine:          EnginePartition,
		Grid:            partjoin.AutoGridSkewed(n, workers, st.Skew),
		RefineThreshold: partjoin.RefineDisabled,
		Workers:         workers,
	}
	if st.Skew >= refineSkew {
		d.RefineThreshold = 0 // auto: fair-share trigger, sweet-spot recursion
	}
	return d
}

func clampProbe(v int) int {
	if v < 0 {
		return 0
	}
	if v >= probeGrid {
		return probeGrid - 1
	}
	return v
}

func safeProbeInv(width float64) float64 {
	if width > 0 {
		return float64(probeGrid) / width
	}
	return 0
}
