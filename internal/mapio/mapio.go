// Package mapio reads and writes spatial relations as CSV
// ("id,minx,miny,maxx,maxy" rows with a header), the interchange format of
// cmd/datagen. It lets users join their own data with cmd/spjoin instead of
// the synthetic maps.
package mapio

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"spjoin/internal/geom"
	"spjoin/internal/rtree"
)

// Header is the first CSV line.
const Header = "id,minx,miny,maxx,maxy"

// Write emits items as CSV.
func Write(w io.Writer, items []rtree.Item) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintln(bw, Header); err != nil {
		return err
	}
	for _, it := range items {
		if _, err := fmt.Fprintf(bw, "%d,%g,%g,%g,%g\n",
			it.ID, it.Rect.MinX, it.Rect.MinY, it.Rect.MaxX, it.Rect.MaxY); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// Read parses a CSV relation. The header line is required; malformed rows
// (wrong field count, non-numeric values, empty rectangles) are rejected
// with the line number.
func Read(r io.Reader) ([]rtree.Item, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	if !sc.Scan() {
		if err := sc.Err(); err != nil {
			return nil, err
		}
		return nil, fmt.Errorf("mapio: empty input")
	}
	if got := strings.TrimSpace(sc.Text()); got != Header {
		return nil, fmt.Errorf("mapio: bad header %q, want %q", got, Header)
	}
	var items []rtree.Item
	line := 1
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" {
			continue
		}
		fields := strings.Split(text, ",")
		if len(fields) != 5 {
			return nil, fmt.Errorf("mapio: line %d: %d fields, want 5", line, len(fields))
		}
		id, err := strconv.ParseInt(fields[0], 10, 32)
		if err != nil {
			return nil, fmt.Errorf("mapio: line %d: bad id: %v", line, err)
		}
		var coords [4]float64
		for i, f := range fields[1:] {
			v, err := strconv.ParseFloat(f, 64)
			if err != nil {
				return nil, fmt.Errorf("mapio: line %d: bad coordinate: %v", line, err)
			}
			coords[i] = v
		}
		rect := geom.Rect{MinX: coords[0], MinY: coords[1], MaxX: coords[2], MaxY: coords[3]}
		if !rect.Valid() {
			return nil, fmt.Errorf("mapio: line %d: invalid rectangle %v", line, rect)
		}
		items = append(items, rtree.Item{ID: rtree.EntryID(id), Rect: rect})
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return items, nil
}
