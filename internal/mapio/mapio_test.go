package mapio

import (
	"bytes"
	"strings"
	"testing"

	"spjoin/internal/tiger"
)

func TestRoundTrip(t *testing.T) {
	items := tiger.Streets(500, 42)
	var buf bytes.Buffer
	if err := Write(&buf, items); err != nil {
		t.Fatalf("Write: %v", err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatalf("Read: %v", err)
	}
	if len(got) != len(items) {
		t.Fatalf("round trip lost rows: %d vs %d", len(got), len(items))
	}
	for i := range items {
		if got[i].ID != items[i].ID {
			t.Fatalf("row %d: id %d, want %d", i, got[i].ID, items[i].ID)
		}
		// %g is precise for float64, so rects round-trip exactly.
		if got[i].Rect != items[i].Rect {
			t.Fatalf("row %d: rect %v, want %v", i, got[i].Rect, items[i].Rect)
		}
	}
}

func TestReadEmptyRelation(t *testing.T) {
	got, err := Read(strings.NewReader(Header + "\n"))
	if err != nil {
		t.Fatalf("Read header-only: %v", err)
	}
	if len(got) != 0 {
		t.Fatalf("got %d rows", len(got))
	}
}

func TestReadSkipsBlankLines(t *testing.T) {
	got, err := Read(strings.NewReader(Header + "\n\n1,0,0,1,1\n\n"))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 {
		t.Fatalf("got %d rows, want 1", len(got))
	}
}

func TestReadErrors(t *testing.T) {
	cases := []struct {
		name, in string
	}{
		{"empty", ""},
		{"bad header", "x,y\n"},
		{"wrong field count", Header + "\n1,2,3\n"},
		{"bad id", Header + "\nxx,0,0,1,1\n"},
		{"bad coord", Header + "\n1,0,zz,1,1\n"},
		{"inverted rect", Header + "\n1,5,5,1,1\n"},
		{"nan", Header + "\n1,NaN,0,1,1\n"},
	}
	for _, c := range cases {
		if _, err := Read(strings.NewReader(c.in)); err == nil {
			t.Errorf("%s: no error", c.name)
		}
	}
}

func TestHeaderConstantMatchesWrite(t *testing.T) {
	var buf bytes.Buffer
	if err := Write(&buf, nil); err != nil {
		t.Fatal(err)
	}
	if got := strings.TrimSpace(buf.String()); got != Header {
		t.Fatalf("Write header %q != Header %q", got, Header)
	}
}
