# Tier-1 gate and maintenance targets. `make check` is the pre-merge bar
# (see README.md): full build, vet, race tests on the concurrent executors,
# then the whole test suite.

.PHONY: check test bench bench-snapshot fuzz

check:
	./scripts/check.sh

test:
	go test ./...

bench:
	go test -run='^$$' -bench=. -benchmem .

# Refresh BENCH_kernel.json (commit the result).
bench-snapshot:
	./scripts/bench_snapshot.sh

fuzz:
	go test -run='^$$' -fuzz=FuzzSweepSoAOracle -fuzztime=30s ./internal/geom/
