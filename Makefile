# Tier-1 gate and maintenance targets. `make check` is the pre-merge bar
# (see README.md): full build, vet, race tests on the concurrent executors,
# then the whole test suite.

.PHONY: check test bench bench-snapshot bench-diff cover fuzz timeline-smoke timeline-diff

check:
	./scripts/check.sh

test:
	go test ./...

bench:
	go test -run='^$$' -bench=. -benchmem .

# Refresh BENCH_kernel.json and BENCH_partjoin.json (commit the results).
bench-snapshot:
	./scripts/bench_snapshot.sh

# Compare fresh runs against both committed snapshots; fails on >10%
# ns/op regressions or any allocs/op growth. TOLERANCE overrides the percent.
bench-diff:
	./scripts/bench_diff.sh $(or $(TOLERANCE),10)

# Test with coverage and enforce the floor used by CI.
cover:
	./scripts/cover.sh

fuzz:
	go test -run='^$$' -fuzz=FuzzSweepSoAOracle -fuzztime=30s ./internal/geom/

# Export the seed-workload Perfetto trace + critical-path report (to
# artifacts/) and validate the trace against the trace-event schema.
timeline-smoke:
	./scripts/timeline_smoke.sh

# Compare the seed critical-path attribution against the committed snapshot;
# fails on shifts beyond TOLERANCE percentage points (default 2).
# Refresh the snapshot with: ./scripts/timeline_diff.sh 2 update
timeline-diff:
	./scripts/timeline_diff.sh $(or $(TOLERANCE),2)
