# Tier-1 gate and maintenance targets. `make check` is the pre-merge bar
# (see README.md): full build, vet, race tests on the concurrent executors,
# then the whole test suite.

.PHONY: check test bench bench-snapshot bench-diff bench-history cover fuzz timeline-smoke timeline-diff introspect-smoke health-smoke observatory experiments-regen

check:
	./scripts/check.sh

test:
	go test ./...

bench:
	go test -run='^$$' -bench=. -benchmem .

# Refresh BENCH_kernel.json and BENCH_partjoin.json (commit the results).
bench-snapshot:
	./scripts/bench_snapshot.sh

# Compare fresh runs against both committed snapshots; fails on >10%
# ns/op regressions or any allocs/op growth. TOLERANCE overrides the percent.
bench-diff:
	./scripts/bench_diff.sh $(or $(TOLERANCE),10)

# Pretty-print the benchmark history trail (docs/bench_history.jsonl).
# FILTER narrows to benchmarks whose name contains the substring.
bench-history:
	./scripts/bench_history.sh $(or $(FILTER),)

# Test with coverage and enforce the floor used by CI.
cover:
	./scripts/cover.sh

fuzz:
	go test -run='^$$' -fuzz=FuzzSweepSoAOracle -fuzztime=30s ./internal/geom/

# Export the seed-workload Perfetto trace + critical-path report (to
# artifacts/) and validate the trace against the trace-event schema.
timeline-smoke:
	./scripts/timeline_smoke.sh

# Run spjoin -explain over the corpus workloads (to artifacts/): EXPLAIN
# reports, wall-clock Perfetto traces validated with tracecheck, heatmap SVG.
introspect-smoke:
	./scripts/introspect_smoke.sh

# Runtime-health smoke (CI): run the skewed cold join with health sampling
# and poll /debug/joins/live while it repeats; assert a well-formed
# "runtime health" EXPLAIN section and live-progress JSON (to artifacts/).
health-smoke:
	./scripts/health_smoke.sh

# Compare the seed critical-path attribution against the committed snapshot;
# fails on shifts beyond TOLERANCE percentage points (default 2).
# Refresh the snapshot with: ./scripts/timeline_diff.sh 2 update
timeline-diff:
	./scripts/timeline_diff.sh $(or $(TOLERANCE),2)

# Observatory gate (CI): record a run store, machine-check the paper's
# claims, verify the committed EXPERIMENTS.md tables match the committed
# store, prove run-to-run determinism with runsdiff. SCALE=1.0 additionally
# diffs the fresh store against docs/observatory/runs.jsonl (weekly job).
observatory:
	./scripts/observatory.sh $(or $(SCALE),0.1)

# After an intentional cost-model or join-order change: re-run the full-
# scale experiments, refresh the committed store, the measured sections of
# EXPERIMENTS.md and the docs/observatory report + charts (commit the diff).
experiments-regen:
	go run ./cmd/experiments -scale 1.0 -run all -out docs/observatory/runs.jsonl
	go run ./cmd/experiments -regen docs/observatory/runs.jsonl
	go run ./cmd/experiments -report docs/observatory/runs.jsonl
	go run ./cmd/experiments -check docs/observatory/runs.jsonl
