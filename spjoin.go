// Package spjoin is a parallel spatial-join library reproducing Brinkhoff,
// Kriegel and Seeger: "Parallel Processing of Spatial Joins Using R-trees"
// (ICDE 1996).
//
// The library has two faces:
//
//   - A native executor (Join, JoinParallel) that computes the filter step
//     of a spatial join — all pairs of objects with intersecting minimum
//     bounding rectangles — over two R*-trees, using goroutines and the
//     paper's dynamic task assignment for real parallelism on the host.
//
//   - A simulator (Simulate) that reruns the paper's evaluation on a
//     virtual shared-virtual-memory machine: n processors, a simulated
//     disk array, local or global LRU buffers, static/dynamic task
//     assignment and task reassignment, reporting response time, per-
//     processor run times, speed-up and disk accesses in virtual time.
//
// Quick start:
//
//	streets, mixed := spjoin.SampleMaps(0.05, 42)
//	r := spjoin.Build(streets)
//	s := spjoin.Build(mixed)
//	pairs := spjoin.JoinParallel(r, s, 0) // 0 = use all CPUs
//
// The subpackages under internal implement the full system: internal/rtree
// (R*-tree), internal/join (sequential join of [BKS 93]), internal/parjoin
// (the paper's parallel algorithms on a discrete-event simulator),
// internal/exp (the per-table/figure experiment harness).
package spjoin

import (
	"spjoin/internal/geom"
	"spjoin/internal/join"
	"spjoin/internal/pagefile"
	"spjoin/internal/parjoin"
	"spjoin/internal/parnative"
	"spjoin/internal/refine"
	"spjoin/internal/rtree"
	"spjoin/internal/tiger"
)

// Rect is an axis-parallel rectangle (a minimum bounding rectangle).
type Rect = geom.Rect

// NewRect builds a rectangle from two arbitrary corner points.
func NewRect(x1, y1, x2, y2 float64) Rect { return geom.NewRect(x1, y1, x2, y2) }

// ID identifies a spatial object in its relation.
type ID = rtree.EntryID

// Item is one spatial object: its identifier and its MBR.
type Item = rtree.Item

// Tree is an R*-tree over a spatial relation. Build one with Build or
// BuildSTR; both accept further Insert/Delete afterwards.
type Tree = rtree.Tree

// Candidate is one filter-step result: a pair of objects whose MBRs
// intersect. Exact geometry testing (the refinement step) is up to the
// application; see internal/refine for segment predicates.
type Candidate = join.Candidate

// TreeParams configures the page geometry of a tree; the default matches
// the paper (4 KB pages, 40-byte directory entries, 156-byte data entries).
type TreeParams = rtree.Params

// DefaultTreeParams returns the paper's page configuration.
func DefaultTreeParams() TreeParams { return rtree.DefaultParams() }

// Build creates an R*-tree from items by dynamic insertion (the paper's
// construction: ChooseSubtree, forced reinsertion, margin-driven splits).
func Build(items []Item) *Tree {
	t := rtree.New(rtree.DefaultParams())
	for _, it := range items {
		t.Insert(it.ID, it.Rect)
	}
	return t
}

// BuildSTR creates an R*-tree from items by Sort-Tile-Recursive bulk
// loading at the given fill factor in (0, 1]; it is much faster than Build
// and, at fill 0.73, reproduces the page counts of the paper's dynamically
// built trees.
func BuildSTR(items []Item, fill float64) *Tree {
	return rtree.BulkLoadSTR(rtree.DefaultParams(), items, fill)
}

// Join computes the filter step of r ⋈ s sequentially with the [BKS 93]
// algorithm (synchronized depth-first traversal, search-space restriction,
// plane sweep) and returns all candidate pairs.
func Join(r, s *Tree) []Candidate {
	return join.Sequential(r, s, join.Options{})
}

// JoinParallel computes the same candidate set with parallel goroutines
// (dynamic task assignment over pairs of subtrees). workers <= 0 uses all
// CPUs. The result is sorted by (R, S) id, so it is deterministic.
func JoinParallel(r, s *Tree, workers int) []Candidate {
	res := parnative.Join(r, s, parnative.Config{Workers: workers, Sorted: true})
	return res.Candidates
}

// SampleMaps generates the two synthetic TIGER-like relations of the
// paper's evaluation at a fraction of the original cardinality (scale 1.0:
// 131,443 street segments and 127,312 mixed features). The generator is
// deterministic in (scale, seed).
func SampleMaps(scale float64, seed int64) (streets, mixed []Item) {
	return tiger.Maps(scale, seed)
}

// Shape is the exact geometry of an object — a line segment or a box —
// used by the refinement step.
type Shape = refine.Shape

// Segment is an exact line segment.
type Segment = refine.Segment

// SegmentShape wraps a line segment as a Shape.
func SegmentShape(x1, y1, x2, y2 float64) Shape {
	return refine.SegmentShape(refine.Segment{X1: x1, Y1: y1, X2: x2, Y2: y2})
}

// BoxShape wraps an axis-parallel box as a Shape.
func BoxShape(r Rect) Shape { return refine.BoxShape(r) }

// Feature couples one object's exact geometry with the MBR the filter step
// indexes.
type Feature = tiger.Feature

// SampleFeatures generates the same maps as SampleMaps but with exact
// geometry attached (streets/rivers/railways are segments, boundary pieces
// are boxes), enabling a full filter + refinement pipeline.
func SampleFeatures(scale float64, seed int64) (streets, mixed []Feature) {
	if scale <= 0 {
		panic("spjoin: scale must be positive")
	}
	nStreets := int(float64(tiger.DefaultStreetCount) * scale)
	nMixed := int(float64(tiger.DefaultMixedCount) * scale)
	if nStreets < 1 {
		nStreets = 1
	}
	if nMixed < 1 {
		nMixed = 1
	}
	return tiger.StreetFeatures(nStreets, seed), tiger.MixedFeaturesExact(nMixed, seed)
}

// BuildFeatures creates an R*-tree over features' MBRs.
func BuildFeatures(fs []Feature) *Tree { return Build(tiger.Items(fs)) }

// JoinRefined runs the complete two-step spatial join in parallel: the
// filter step over the R*-trees followed by the exact-geometry refinement,
// both executed by the same worker that found each candidate (as in the
// paper). It returns the exact result pairs plus the number of false hits
// the refinement eliminated.
func JoinRefined(r, s *Tree, shapeR, shapeS func(ID) Shape, workers int) (answers []Candidate, falseHits int) {
	res := parnative.Join(r, s, parnative.Config{
		Workers: workers,
		Sorted:  true,
		Refiner: func(c Candidate) bool {
			return shapeR(c.R).Intersects(shapeS(c.S))
		},
	})
	return res.Candidates, res.FalseHits
}

// QueryWindows evaluates a batch of window queries in parallel goroutines
// (dynamic assignment, like the join). The i-th result holds the ids of all
// objects whose MBRs intersect windows[i]. workers <= 0 uses all CPUs.
func QueryWindows(t *Tree, windows []Rect, workers int) [][]ID {
	return parnative.WindowQueries(t, windows, workers)
}

// NearestNeighbors returns the k objects closest to the point (x, y), in
// ascending distance of their MBRs (the §5 "neighbor query").
func NearestNeighbors(t *Tree, x, y float64, k int) []rtree.Neighbor {
	return t.NearestNeighbors(x, y, k)
}

// Neighbor is one nearest-neighbor result: object id, MBR, and distance.
type Neighbor = rtree.Neighbor

// SimConfig configures one simulated parallel join run (processors, disks,
// buffer organization and size, task assignment, reassignment, victim
// policy, cost calibration).
type SimConfig = parjoin.Config

// SimResult reports the virtual-time measures of a simulated run: response
// time, per-processor finish times, total work, disk accesses, buffer hit
// classes.
type SimResult = parjoin.Result

// DefaultSimConfig returns the paper's best variant — global buffer,
// dynamic task assignment, reassignment on all directory levels — with n
// processors, d disks and the given total buffer capacity in pages.
func DefaultSimConfig(procs, disks, bufferPages int) SimConfig {
	return parjoin.DefaultConfig(procs, disks, bufferPages)
}

// SaveTree persists a tree into a page file at path (one node per 4 KB
// page), creating or truncating the file.
func SaveTree(t *Tree, path string) error {
	pf, err := pagefile.Create(path)
	if err != nil {
		return err
	}
	if err := t.SaveToPageFile(pf); err != nil {
		pf.Close()
		return err
	}
	return pf.Close()
}

// PagedTree is a tree persisted with SaveTree, served through a real
// buffer pool for out-of-core processing.
type PagedTree = rtree.PagedTree

// OpenTree opens a persisted tree, buffering up to bufferPages pages in
// memory. Call close when done.
func OpenTree(path string, bufferPages int) (t *PagedTree, close func() error, err error) {
	pf, err := pagefile.Open(path)
	if err != nil {
		return nil, nil, err
	}
	pt, err := rtree.OpenPagedTree(pf, bufferPages)
	if err != nil {
		pf.Close()
		return nil, nil, err
	}
	return pt, pf.Close, nil
}

// JoinOutOfCore runs the filter join over two persisted trees with real
// page I/O through their buffer pools. It returns the candidates and the
// number of physical page reads performed.
func JoinOutOfCore(r, s *PagedTree) ([]Candidate, int64, error) {
	cands, stats, err := join.PagedSequential(r, s, join.Options{})
	return cands, stats.Reads(), err
}

// Assignment selects how tasks reach the simulated processors.
type Assignment = parjoin.Assignment

// BufferOrg selects the simulated buffer organization.
type BufferOrg = parjoin.BufferOrg

// Reassign selects the simulated load-balancing mode.
type Reassign = parjoin.Reassign

// Victim selects which processor an idle simulated processor helps.
type Victim = parjoin.Victim

// Re-exported enumeration values for SimConfig fields.
const (
	StaticRange      = parjoin.StaticRange      // contiguous plane-sweep blocks
	StaticRoundRobin = parjoin.StaticRoundRobin // plane-sweep order dealt round-robin
	Dynamic          = parjoin.Dynamic          // shared task queue
	StaticEstimated  = parjoin.StaticEstimated  // LPT over estimated task costs

	LocalBuffers  = parjoin.LocalOrg         // private LRU buffer per processor
	GlobalBuffer  = parjoin.GlobalOrg        // one logical buffer over all memories
	SharedNothing = parjoin.SharedNothingOrg // per-processor disks, page shipping

	ReassignNone = parjoin.ReassignNone // no load balancing
	ReassignRoot = parjoin.ReassignRoot // move unstarted root-level tasks
	ReassignAll  = parjoin.ReassignAll  // split work at every level

	MostLoaded   = parjoin.MostLoaded   // help the processor reporting most work
	RandomVictim = parjoin.RandomVictim // help an arbitrary processor
)

// Simulate runs the parallel spatial join of r and s on the simulated
// shared-virtual-memory machine and returns the paper's measures. Runs are
// bit-for-bit reproducible in (r, s, cfg).
func Simulate(r, s *Tree, cfg SimConfig) SimResult {
	return parjoin.Run(r, s, cfg)
}
