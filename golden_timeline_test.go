package spjoin

// Golden-timeline regression harness: the span profiler's view of the seed
// workload — span counts, SHA-256 span-stream digests and the critical-path
// attribution line — is captured in testdata/golden_timeline.json at 1, 2
// and 4 processors. Any change to the simulator, the span call sites or the
// recorder that shifts a single span boundary fails this test; intentional
// changes regenerate the file with
//
//	go test -run TestGoldenTimeline -update .
//
// (sharing the -update flag with the golden-metrics harness).

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"testing"

	"spjoin/internal/parjoin"
	"spjoin/internal/timeline"
)

// goldenTimelineProcs are the machine sizes the digests are pinned at.
var goldenTimelineProcs = []int{1, 2, 4}

type goldenTimelineEntry struct {
	Procs        int    `json:"procs"`
	BufferPages  int    `json:"buffer_pages"`
	Spans        int    `json:"spans"`
	ResponseS    string `json:"response_s"`
	Digest       string `json:"digest"`
	CriticalPath string `json:"critical_path"`
}

type goldenTimeline struct {
	Scale   float64               `json:"scale"`
	Seed    int64                 `json:"seed"`
	Disks   int                   `json:"disks"`
	Entries []goldenTimelineEntry `json:"entries"`
}

// timelineRun executes the gd seed join at the given processor count with a
// recorder attached and returns the recorder plus the run's Result.
func timelineRun(tb testing.TB, procs int) (*timeline.Recorder, parjoin.Result) {
	tb.Helper()
	w := goldenWorkload(tb)
	pages := w.Pages(goldenBufferFull, procs)
	rec := timeline.NewRecorder(procs, goldenDisks)
	cfg := parjoin.DefaultConfig(procs, goldenDisks, pages).Variant("gd")
	cfg.Timeline = rec
	return rec, parjoin.Run(w.R, w.S, cfg)
}

func collectGoldenTimeline(tb testing.TB) goldenTimeline {
	tb.Helper()
	g := goldenTimeline{Scale: goldenScale, Seed: goldenSeed, Disks: goldenDisks}
	for _, procs := range goldenTimelineProcs {
		rec, res := timelineRun(tb, procs)
		rep := timeline.Analyze(rec, res.ResponseTime)
		g.Entries = append(g.Entries, goldenTimelineEntry{
			Procs:        procs,
			BufferPages:  goldenWorkload(tb).Pages(goldenBufferFull, procs),
			Spans:        rec.SpanCount(),
			ResponseS:    fmt.Sprintf("%.3f", res.ResponseTime.Seconds()),
			Digest:       rec.Digest(),
			CriticalPath: rep.AttributionLine(),
		})
	}
	return g
}

func goldenTimelinePath() string { return filepath.Join("testdata", "golden_timeline.json") }

// TestGoldenTimeline compares the recorded seed timelines against the
// committed digests byte-for-byte.
func TestGoldenTimeline(t *testing.T) {
	g := collectGoldenTimeline(t)
	data, err := json.MarshalIndent(g, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	got := append(data, '\n')
	if *updateGolden {
		if err := os.MkdirAll(filepath.Dir(goldenTimelinePath()), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenTimelinePath(), got, 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s", goldenTimelinePath())
		return
	}
	want, err := os.ReadFile(goldenTimelinePath())
	if err != nil {
		t.Fatalf("missing golden file (run with -update to create): %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("timeline digests diverged from %s (run with -update if intentional)\ngot:\n%s\nwant:\n%s",
			goldenTimelinePath(), got, want)
	}
}

// TestTimelineObservationOnly extends the metrics observation-only contract
// to the span profiler: a profiled run reproduces the unprofiled Result bit
// for bit for every buffer variant, and two profiled runs record identical
// span streams.
func TestTimelineObservationOnly(t *testing.T) {
	w := goldenWorkload(t)
	pages := w.Pages(goldenBufferFull, goldenProcs)
	for _, v := range []string{"lsr", "gsrr", "gd"} {
		plain := parjoin.Run(w.R, w.S, parjoin.DefaultConfig(goldenProcs, goldenDisks, pages).Variant(v))

		rec := timeline.NewRecorder(goldenProcs, goldenDisks)
		cfg := parjoin.DefaultConfig(goldenProcs, goldenDisks, pages).Variant(v)
		cfg.Timeline = rec
		res := parjoin.Run(w.R, w.S, cfg)

		if res.ResponseTime != plain.ResponseTime || res.DiskAccesses != plain.DiskAccesses ||
			res.Candidates != plain.Candidates || res.Buffer != plain.Buffer ||
			res.Reassignments != plain.Reassignments {
			t.Fatalf("%s: profiled run diverged from plain run:\n%+v\nvs\n%+v", v, res, plain)
		}

		rec2 := timeline.NewRecorder(goldenProcs, goldenDisks)
		cfg2 := parjoin.DefaultConfig(goldenProcs, goldenDisks, pages).Variant(v)
		cfg2.Timeline = rec2
		parjoin.Run(w.R, w.S, cfg2)
		if rec.Digest() != rec2.Digest() {
			t.Fatalf("%s: two profiled runs recorded different span streams", v)
		}
		if rec.SpanCount() == 0 {
			t.Fatalf("%s: profiled run recorded no spans", v)
		}
	}
}

// TestTimelineExportAndAttribution checks, at every pinned processor count,
// that the Perfetto export passes the trace-event validator and that the
// critical-path attribution sums to the run's response time.
func TestTimelineExportAndAttribution(t *testing.T) {
	for _, procs := range goldenTimelineProcs {
		rec, res := timelineRun(t, procs)

		var buf bytes.Buffer
		if err := rec.WritePerfetto(&buf); err != nil {
			t.Fatalf("procs=%d: %v", procs, err)
		}
		if err := timeline.ValidateTraceEvents(buf.Bytes()); err != nil {
			t.Fatalf("procs=%d: exported trace invalid: %v", procs, err)
		}

		rep := timeline.Analyze(rec, res.ResponseTime)
		sum, response := float64(rep.AttributionSum()), float64(res.ResponseTime)
		if math.Abs(sum-response) > 1e-6*math.Max(1, response) {
			t.Errorf("procs=%d: attribution sums to %v, response is %v", procs, sum, response)
		}
		if rep.MaxMeanRatio < 1 && procs > 1 {
			t.Errorf("procs=%d: max/mean load ratio %v < 1", procs, rep.MaxMeanRatio)
		}
	}
}
