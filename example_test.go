package spjoin_test

import (
	"fmt"

	"spjoin"
)

// ExampleJoin builds two tiny relations and joins them sequentially.
func ExampleJoin() {
	r := spjoin.Build([]spjoin.Item{
		{ID: 1, Rect: spjoin.NewRect(0, 0, 2, 2)},
		{ID: 2, Rect: spjoin.NewRect(10, 10, 12, 12)},
	})
	s := spjoin.Build([]spjoin.Item{
		{ID: 7, Rect: spjoin.NewRect(1, 1, 3, 3)},
	})
	for _, c := range spjoin.Join(r, s) {
		fmt.Printf("%d x %d\n", c.R, c.S)
	}
	// Output: 1 x 7
}

// ExampleJoinParallel joins the synthetic sample maps on all CPUs.
func ExampleJoinParallel() {
	streets, features := spjoin.SampleMaps(0.005, 42)
	r := spjoin.BuildSTR(streets, 0.73)
	s := spjoin.BuildSTR(features, 0.73)
	pairs := spjoin.JoinParallel(r, s, 0)
	fmt.Println(len(pairs) == len(spjoin.Join(r, s)))
	// Output: true
}

// ExampleSimulate reruns the paper's best parallel variant on the simulated
// shared-virtual-memory machine.
func ExampleSimulate() {
	streets, features := spjoin.SampleMaps(0.01, 42)
	r := spjoin.BuildSTR(streets, 0.73)
	s := spjoin.BuildSTR(features, 0.73)
	res := spjoin.Simulate(r, s, spjoin.DefaultSimConfig(8, 8, 100))
	fmt.Println(res.Candidates > 0, res.ResponseTime > 0, res.DiskAccesses > 0)
	// Output: true true true
}

// ExampleJoinRefined runs the complete two-step join: filter by MBR, refine
// by exact geometry.
func ExampleJoinRefined() {
	streets, features := spjoin.SampleFeatures(0.01, 42)
	r := spjoin.BuildFeatures(streets)
	s := spjoin.BuildFeatures(features)
	answers, falseHits := spjoin.JoinRefined(r, s,
		func(id spjoin.ID) spjoin.Shape { return streets[id].Shape },
		func(id spjoin.ID) spjoin.Shape { return features[id].Shape }, 0)
	total := len(answers) + falseHits
	fmt.Println(total == len(spjoin.JoinParallel(r, s, 0)))
	// Output: true
}

// ExampleBoxShape demonstrates the exact-geometry predicates of the
// refinement step.
func ExampleBoxShape() {
	road := spjoin.SegmentShape(0, 0, 10, 10)
	park := spjoin.BoxShape(spjoin.NewRect(4, 4, 6, 6))
	fmt.Println(road.Intersects(park))
	// Output: true
}
