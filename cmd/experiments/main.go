// Command experiments regenerates the tables and figures of the paper's
// evaluation (§4). Each experiment prints rows comparable to the paper's
// plots; EXPERIMENTS.md records the paper-vs-measured comparison.
//
// Usage:
//
//	experiments [-run all|table1,fig5,...] [-scale 1.0] [-seed 42] [-list]
//
// At -scale 1.0 the workload matches the paper's cardinalities (131,443 and
// 127,312 objects); the full suite takes a few minutes. Smaller scales give
// quick qualitative runs.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"spjoin/internal/exp"
)

func main() {
	runFlag := flag.String("run", "all", "comma-separated experiment names, or 'all'")
	scale := flag.Float64("scale", 1.0, "workload scale (1.0 = paper cardinalities)")
	seed := flag.Int64("seed", 42, "workload generator seed")
	list := flag.Bool("list", false, "list experiments and exit")
	flag.Parse()

	if *list {
		for _, e := range exp.All() {
			fmt.Printf("%-8s %s\n", e.Name, e.Title)
		}
		return
	}

	var selected []exp.Experiment
	if *runFlag == "all" {
		selected = exp.All()
	} else {
		for _, name := range strings.Split(*runFlag, ",") {
			name = strings.TrimSpace(name)
			e, ok := exp.ByName(name)
			if !ok {
				fmt.Fprintf(os.Stderr, "experiments: unknown experiment %q (use -list)\n", name)
				os.Exit(2)
			}
			selected = append(selected, e)
		}
	}

	start := time.Now()
	fmt.Printf("building workload at scale %g (seed %d)...\n", *scale, *seed)
	w := exp.NewWorkload(*scale, *seed)
	fmt.Printf("workload: %s (built in %v)\n\n", w.Describe(), time.Since(start).Round(time.Millisecond))

	for _, e := range selected {
		t0 := time.Now()
		e.Run(w, os.Stdout)
		fmt.Printf("[%s completed in %v]\n\n", e.Name, time.Since(t0).Round(time.Millisecond))
	}
}
