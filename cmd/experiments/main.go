// Command experiments regenerates the tables and figures of the paper's
// evaluation (§4). Each experiment prints rows comparable to the paper's
// plots; EXPERIMENTS.md records the paper-vs-measured comparison.
//
// Usage:
//
//	experiments [-run all|table1,fig5,...] [-scale 1.0] [-seed 42] [-list]
//	            [-out runs.jsonl]        record every cell into a run store
//	experiments -check runs.jsonl        evaluate the paper claims, exit 1 on failure
//	experiments -report runs.jsonl       render markdown + SVG charts from a store
//	experiments -regen runs.jsonl        rewrite EXPERIMENTS.md measured sections
//
// At -scale 1.0 the workload matches the paper's cardinalities (131,443 and
// 127,312 objects); the full suite takes a few minutes. Smaller scales give
// quick qualitative runs.
package main

import (
	"flag"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"time"

	"spjoin/internal/claims"
	"spjoin/internal/exp"
	"spjoin/internal/report"
	"spjoin/internal/runstore"
)

func main() {
	runFlag := flag.String("run", "all", "comma-separated experiment names, or 'all'")
	scale := flag.Float64("scale", 1.0, "workload scale (1.0 = paper cardinalities)")
	seed := flag.Int64("seed", 42, "workload generator seed")
	list := flag.Bool("list", false, "list experiments and exit")
	out := flag.String("out", "", "record every experiment cell into this JSONL run store")
	check := flag.String("check", "", "evaluate the paper claims against this run store and exit")
	reportFlag := flag.String("report", "", "render the observatory report (markdown + SVG) from this run store and exit")
	regen := flag.String("regen", "", "regenerate EXPERIMENTS.md measured sections from this run store and exit")
	dir := flag.String("dir", "docs/observatory", "output directory for -report artifacts")
	doc := flag.String("doc", "EXPERIMENTS.md", "document -regen rewrites in place")
	flag.Parse()

	if *list {
		for _, e := range exp.All() {
			fmt.Printf("%-8s %s\n", e.Name, e.Title)
		}
		return
	}
	if *check != "" {
		os.Exit(runCheck(*check))
	}
	if *reportFlag != "" {
		os.Exit(runReport(*reportFlag, *dir))
	}
	if *regen != "" {
		os.Exit(runRegen(*regen, *doc))
	}

	var selected []exp.Experiment
	if *runFlag == "all" {
		selected = exp.All()
	} else {
		picked := map[string]bool{}
		for _, name := range strings.Split(*runFlag, ",") {
			name = strings.TrimSpace(name)
			e, ok := exp.ByName(name)
			if !ok {
				fmt.Fprintf(os.Stderr, "experiments: unknown experiment %q (use -list)\n", name)
				os.Exit(2)
			}
			// Dedupe: running an experiment twice would record duplicate
			// run-store cells.
			if picked[e.Name] {
				continue
			}
			picked[e.Name] = true
			selected = append(selected, e)
		}
	}

	start := time.Now()
	fmt.Printf("building workload at scale %g (seed %d)...\n", *scale, *seed)
	w := exp.NewWorkload(*scale, *seed)
	fmt.Printf("workload: %s (built in %v)\n\n", w.Describe(), time.Since(start).Round(time.Millisecond))
	if *out != "" {
		w.Rec = exp.NewRecording(*seed, *scale, gitRev())
	}

	for _, e := range selected {
		t0 := time.Now()
		e.Run(w, os.Stdout)
		fmt.Printf("[%s completed in %v]\n\n", e.Name, time.Since(t0).Round(time.Millisecond))
	}

	if w.Rec != nil {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
			os.Exit(1)
		}
		n, err := w.Rec.WriteStore(f)
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "experiments: writing run store: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("run store: %d record(s) -> %s\n", n, *out)
	}
}

// runCheck evaluates every machine-checked paper claim against the store.
func runCheck(path string) int {
	s, err := runstore.ReadFile(path)
	if err != nil {
		fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
		return 2
	}
	rep := claims.Evaluate(claims.Paper(), s)
	rep.Render(os.Stdout)
	if rep.Failed() > 0 {
		return 1
	}
	return 0
}

// runReport renders the markdown report and the SVG charts into dir.
func runReport(path, dir string) int {
	s, err := runstore.ReadFile(path)
	if err != nil {
		fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
		return 2
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
		return 1
	}
	var md strings.Builder
	if err := report.Markdown(&md, s); err != nil {
		fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
		return 1
	}
	files := map[string]func() (string, error){
		"report.md":      func() (string, error) { return md.String(), nil },
		"speedup.svg":    func() (string, error) { return report.SpeedupSVG(s) },
		"efficiency.svg": func() (string, error) { return report.EfficiencySVG(s) },
	}
	for _, name := range []string{"report.md", "speedup.svg", "efficiency.svg"} {
		body, err := files[name]()
		if err != nil {
			fmt.Fprintf(os.Stderr, "experiments: %s: %v\n", name, err)
			return 1
		}
		out := filepath.Join(dir, name)
		if err := os.WriteFile(out, []byte(body), 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
			return 1
		}
		fmt.Printf("wrote %s\n", out)
	}
	return 0
}

// runRegen rewrites the measured sections of doc from the store.
func runRegen(path, doc string) int {
	s, err := runstore.ReadFile(path)
	if err != nil {
		fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
		return 2
	}
	old, err := os.ReadFile(doc)
	if err != nil {
		fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
		return 1
	}
	fresh, err := report.Regen(old, s)
	if err != nil {
		fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
		return 1
	}
	if string(fresh) == string(old) {
		fmt.Printf("%s already up to date\n", doc)
		return 0
	}
	if err := os.WriteFile(doc, fresh, 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
		return 1
	}
	fmt.Printf("regenerated measured sections of %s\n", doc)
	return 0
}

// gitRev stamps records with the producing revision; "unknown" outside a
// usable git checkout.
func gitRev() string {
	out, err := exec.Command("git", "rev-parse", "--short=12", "HEAD").Output()
	if err != nil {
		return "unknown"
	}
	return strings.TrimSpace(string(out))
}
