// Command runsdiff compares two observatory run stores metric by metric
// and exits nonzero on divergence — the regression gate between a golden
// store and a fresh run.
//
// Usage:
//
//	runsdiff [-tol 0.0] [-metric-tol response_s=0.01,disk=0] [-digests] A.jsonl B.jsonl
//
// -tol is the global relative tolerance; -metric-tol overrides it per
// metric; -digests additionally compares the full metrics/timeline
// digests (exact behavioral identity, not just the flattened metrics).
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"spjoin/internal/runstore"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is the whole program, factored for the exit-code test.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("runsdiff", flag.ContinueOnError)
	fs.SetOutput(stderr)
	tol := fs.Float64("tol", 0, "global relative tolerance (0 = exact)")
	metricTol := fs.String("metric-tol", "", "per-metric overrides, e.g. response_s=0.01,disk=0")
	digests := fs.Bool("digests", false, "also compare metrics/timeline digests")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() != 2 {
		fmt.Fprintln(stderr, "usage: runsdiff [-tol t] [-metric-tol m=t,...] [-digests] A.jsonl B.jsonl")
		return 2
	}
	opts := runstore.DiffOpts{Tol: *tol, Digests: *digests}
	if *metricTol != "" {
		opts.MetricTol = map[string]float64{}
		for _, kv := range strings.Split(*metricTol, ",") {
			k, v, ok := strings.Cut(strings.TrimSpace(kv), "=")
			if !ok {
				fmt.Fprintf(stderr, "runsdiff: bad -metric-tol entry %q (want metric=tolerance)\n", kv)
				return 2
			}
			t, err := strconv.ParseFloat(v, 64)
			if err != nil {
				fmt.Fprintf(stderr, "runsdiff: bad tolerance in %q: %v\n", kv, err)
				return 2
			}
			opts.MetricTol[k] = t
		}
	}
	a, err := runstore.ReadFile(fs.Arg(0))
	if err != nil {
		fmt.Fprintf(stderr, "runsdiff: %v\n", err)
		return 2
	}
	b, err := runstore.ReadFile(fs.Arg(1))
	if err != nil {
		fmt.Fprintf(stderr, "runsdiff: %v\n", err)
		return 2
	}
	if n := runstore.RenderDiff(stdout, runstore.Diff(a, b, opts), a.Len(), b.Len()); n > 0 {
		return 1
	}
	return 0
}
