package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"spjoin/internal/runstore"
)

// writeTestStore writes a small sealed store to dir/name.
func writeTestStore(t *testing.T, dir, name string, disk float64) string {
	t.Helper()
	path := filepath.Join(dir, name)
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	w := runstore.NewWriter(f)
	recs := []runstore.Record{
		{Experiment: "fig5", Params: map[string]string{"variant": "gd", "buffer": "800"},
			Seed: 42, Scale: 1, Engine: "sim",
			Metrics: map[string]float64{"disk": disk, "response_s": 154.5}},
		{Experiment: "fig7", Params: map[string]string{"variant": "lsr", "reassign": "all"},
			Seed: 42, Scale: 1, Engine: "sim",
			Metrics: map[string]float64{"disk": 19679, "response_s": 174.4}},
	}
	for _, rec := range recs {
		if err := w.Write(rec); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	return path
}

// TestExitCodes pins the acceptance contract: equal stores exit 0, one
// perturbed metric exits nonzero and names the offending cell.
func TestExitCodes(t *testing.T) {
	dir := t.TempDir()
	a := writeTestStore(t, dir, "a.jsonl", 16243)
	same := writeTestStore(t, dir, "same.jsonl", 16243)
	perturbed := writeTestStore(t, dir, "b.jsonl", 16244)

	var out, errBuf bytes.Buffer
	if code := run([]string{a, same}, &out, &errBuf); code != 0 {
		t.Fatalf("equal stores exited %d\n%s%s", code, out.String(), errBuf.String())
	}
	if !strings.Contains(out.String(), "OK") {
		t.Fatalf("clean diff output: %q", out.String())
	}

	out.Reset()
	if code := run([]string{a, perturbed}, &out, &errBuf); code != 1 {
		t.Fatalf("perturbed store exited %d, want 1\n%s", code, out.String())
	}
	for _, want := range []string{"variant=gd", "disk", "16243", "16244"} {
		if !strings.Contains(out.String(), want) {
			t.Fatalf("diff output missing %q:\n%s", want, out.String())
		}
	}
}

func TestTolerances(t *testing.T) {
	dir := t.TempDir()
	a := writeTestStore(t, dir, "a.jsonl", 16243)
	b := writeTestStore(t, dir, "b.jsonl", 16300) // ~0.35% off

	var out, errBuf bytes.Buffer
	if code := run([]string{"-tol", "0.01", a, b}, &out, &errBuf); code != 0 {
		t.Fatalf("0.35%% drift under 1%% tolerance exited %d\n%s", code, out.String())
	}
	out.Reset()
	if code := run([]string{"-metric-tol", "disk=0.01", a, b}, &out, &errBuf); code != 0 {
		t.Fatalf("per-metric tolerance ignored: exit %d\n%s", code, out.String())
	}
	out.Reset()
	if code := run([]string{"-metric-tol", "response_s=0.01", a, b}, &out, &errBuf); code != 1 {
		t.Fatalf("tolerance on the wrong metric must not mask the drift: exit %d", code)
	}
}

func TestUsageErrors(t *testing.T) {
	var out, errBuf bytes.Buffer
	if code := run([]string{"only-one.jsonl"}, &out, &errBuf); code != 2 {
		t.Fatalf("missing arg exited %d, want 2", code)
	}
	if code := run([]string{"-metric-tol", "garbage", "a", "b"}, &out, &errBuf); code != 2 {
		t.Fatalf("bad -metric-tol exited %d, want 2", code)
	}
	if code := run([]string{"/nonexistent/a.jsonl", "/nonexistent/b.jsonl"}, &out, &errBuf); code != 2 {
		t.Fatalf("unreadable store exited %d, want 2", code)
	}
}
