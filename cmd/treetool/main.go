// Command treetool builds, inspects and queries persisted R*-trees (the
// .spjf page files of this library).
//
// Usage:
//
//	treetool build -in map.csv -out tree.spjf [-fill 0.73] [-insert]
//	treetool stats -tree tree.spjf
//	treetool query -tree tree.spjf -window minx,miny,maxx,maxy [-limit 20]
//	treetool nn -tree tree.spjf -at x,y [-k 5]
//	treetool verify -tree tree.spjf
//
// build loads a CSV relation (see cmd/datagen for the format) and persists
// an R*-tree over it; stats prints the Table 1 view of a persisted tree;
// query runs a window query out-of-core through a small buffer pool; nn
// finds the k nearest neighbors of a point the same way.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"spjoin/internal/geom"
	"spjoin/internal/mapio"
	"spjoin/internal/pagefile"
	"spjoin/internal/rtree"
)

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	switch os.Args[1] {
	case "build":
		cmdBuild(os.Args[2:])
	case "stats":
		cmdStats(os.Args[2:])
	case "query":
		cmdQuery(os.Args[2:])
	case "nn":
		cmdNN(os.Args[2:])
	case "verify":
		cmdVerify(os.Args[2:])
	default:
		usage()
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage: treetool build -in map.csv -out tree.spjf [-fill 0.73] [-insert]
       treetool stats -tree tree.spjf
       treetool query -tree tree.spjf -window minx,miny,maxx,maxy [-limit 20]
       treetool nn -tree tree.spjf -at x,y [-k 5]
       treetool verify -tree tree.spjf`)
	os.Exit(2)
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "treetool: %v\n", err)
	os.Exit(1)
}

func cmdBuild(args []string) {
	fs := flag.NewFlagSet("build", flag.ExitOnError)
	in := fs.String("in", "", "input CSV relation")
	out := fs.String("out", "", "output .spjf page file")
	fill := fs.Float64("fill", 0.73, "STR bulk-load fill factor")
	insert := fs.Bool("insert", false, "build by dynamic R*-tree insertion instead of STR")
	fs.Parse(args)
	if *in == "" || *out == "" {
		usage()
	}

	f, err := os.Open(*in)
	if err != nil {
		fatal(err)
	}
	items, err := mapio.Read(f)
	f.Close()
	if err != nil {
		fatal(err)
	}

	var tree *rtree.Tree
	if *insert {
		tree = rtree.New(rtree.DefaultParams())
		for _, it := range items {
			tree.Insert(it.ID, it.Rect)
		}
	} else {
		tree = rtree.BulkLoadSTR(rtree.DefaultParams(), items, *fill)
	}
	if err := tree.CheckIntegrity(); err != nil {
		fatal(err)
	}

	pf, err := pagefile.Create(*out)
	if err != nil {
		fatal(err)
	}
	if err := tree.SaveToPageFile(pf); err != nil {
		pf.Close()
		fatal(err)
	}
	if err := pf.Close(); err != nil {
		fatal(err)
	}
	st := tree.Stats()
	fmt.Printf("built %s: %d entries, height %d, %d data + %d directory pages\n",
		*out, st.DataEntries, st.Height, st.DataPages, st.DirectoryPages)
}

func openTree(path string) (*rtree.PagedTree, func()) {
	pf, err := pagefile.Open(path)
	if err != nil {
		fatal(err)
	}
	pt, err := rtree.OpenPagedTree(pf, 256)
	if err != nil {
		pf.Close()
		fatal(err)
	}
	return pt, func() { pf.Close() }
}

func cmdStats(args []string) {
	fs := flag.NewFlagSet("stats", flag.ExitOnError)
	tree := fs.String("tree", "", ".spjf page file")
	fs.Parse(args)
	if *tree == "" {
		usage()
	}
	pt, done := openTree(*tree)
	defer done()
	st, err := pt.Stats()
	if err != nil {
		fatal(err)
	}
	fmt.Printf("height                     %d\n", st.Height)
	fmt.Printf("number of data entries     %d\n", st.DataEntries)
	fmt.Printf("number of data pages       %d\n", st.DataPages)
	fmt.Printf("number of directory pages  %d\n", st.DirectoryPages)
	fmt.Printf("root entries               %d\n", st.RootEntries)
	fmt.Printf("avg leaf / dir fill        %.0f%% / %.0f%%\n",
		st.AvgLeafFill*100, st.AvgDirFill*100)
}

func cmdQuery(args []string) {
	fs := flag.NewFlagSet("query", flag.ExitOnError)
	tree := fs.String("tree", "", ".spjf page file")
	window := fs.String("window", "", "query rectangle: minx,miny,maxx,maxy")
	limit := fs.Int("limit", 20, "print at most this many results (0 = count only)")
	fs.Parse(args)
	if *tree == "" || *window == "" {
		usage()
	}
	coords := strings.Split(*window, ",")
	if len(coords) != 4 {
		fatal(fmt.Errorf("window needs 4 coordinates, got %d", len(coords)))
	}
	var v [4]float64
	for i, c := range coords {
		f, err := strconv.ParseFloat(strings.TrimSpace(c), 64)
		if err != nil {
			fatal(fmt.Errorf("bad coordinate %q: %v", c, err))
		}
		v[i] = f
	}
	query := geom.NewRect(v[0], v[1], v[2], v[3])

	pt, done := openTree(*tree)
	defer done()
	count := 0
	err := pt.Search(query, func(id rtree.EntryID, r geom.Rect) bool {
		count++
		if count <= *limit {
			fmt.Printf("  %d  %v\n", id, r)
		}
		return true
	})
	if err != nil {
		fatal(err)
	}
	fmt.Printf("%d entries intersect %v (%d physical page reads)\n",
		count, query, pt.Pool().Misses())
}

func cmdNN(args []string) {
	fs := flag.NewFlagSet("nn", flag.ExitOnError)
	tree := fs.String("tree", "", ".spjf page file")
	at := fs.String("at", "", "query point: x,y")
	k := fs.Int("k", 5, "number of neighbors")
	fs.Parse(args)
	if *tree == "" || *at == "" {
		usage()
	}
	coords := strings.Split(*at, ",")
	if len(coords) != 2 {
		fatal(fmt.Errorf("-at needs x,y"))
	}
	x, err := strconv.ParseFloat(strings.TrimSpace(coords[0]), 64)
	if err != nil {
		fatal(err)
	}
	y, err := strconv.ParseFloat(strings.TrimSpace(coords[1]), 64)
	if err != nil {
		fatal(err)
	}
	pt, done := openTree(*tree)
	defer done()
	nn, err := pt.NearestNeighbors(x, y, *k)
	if err != nil {
		fatal(err)
	}
	for i, nb := range nn {
		fmt.Printf("%2d. entry %6d  dist %8.4f  %v\n", i+1, nb.ID, nb.Dist, nb.Rect)
	}
	fmt.Printf("(%d physical page reads)\n", pt.Pool().Misses())
}

func cmdVerify(args []string) {
	fs := flag.NewFlagSet("verify", flag.ExitOnError)
	tree := fs.String("tree", "", ".spjf page file")
	fs.Parse(args)
	if *tree == "" {
		usage()
	}
	pt, done := openTree(*tree)
	defer done()
	if err := pt.CheckIntegrity(); err != nil {
		fatal(err)
	}
	fmt.Printf("ok: %d entries, all checksums and invariants verified (%d pages read)\n",
		pt.Len(), pt.Pool().Misses())
}
