// Command datagen emits the synthetic TIGER-like test maps as CSV for
// inspection or use by external tools.
//
// Usage:
//
//	datagen [-scale 0.01] [-seed 42] [-map streets|mixed|both] [-o DIR]
//
// With -o, files streets.csv / mixed.csv are written to DIR; otherwise the
// selected map streams to stdout. Each row is "id,minx,miny,maxx,maxy".
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"spjoin/internal/mapio"
	"spjoin/internal/rtree"
	"spjoin/internal/tiger"
)

func main() {
	scale := flag.Float64("scale", 0.01, "workload scale (1.0 = paper cardinalities)")
	seed := flag.Int64("seed", 42, "generator seed")
	which := flag.String("map", "both", "streets | mixed | both")
	outDir := flag.String("o", "", "output directory (default: stdout; required for -map both)")
	flag.Parse()

	streets, mixed := tiger.Maps(*scale, *seed)
	switch *which {
	case "streets":
		emit(streets, "streets", *outDir)
	case "mixed":
		emit(mixed, "mixed", *outDir)
	case "both":
		if *outDir == "" {
			fmt.Fprintln(os.Stderr, "datagen: -map both requires -o DIR")
			os.Exit(2)
		}
		emit(streets, "streets", *outDir)
		emit(mixed, "mixed", *outDir)
	default:
		fmt.Fprintf(os.Stderr, "datagen: unknown -map %q\n", *which)
		os.Exit(2)
	}
}

func emit(items []rtree.Item, name, dir string) {
	var w io.Writer = os.Stdout
	if dir != "" {
		path := filepath.Join(dir, name+".csv")
		f, err := os.Create(path)
		if err != nil {
			fmt.Fprintf(os.Stderr, "datagen: %v\n", err)
			os.Exit(1)
		}
		defer func() {
			if err := f.Close(); err != nil {
				fmt.Fprintf(os.Stderr, "datagen: close %s: %v\n", path, err)
				os.Exit(1)
			}
			fmt.Fprintf(os.Stderr, "wrote %d rows to %s\n", len(items), path)
		}()
		w = f
	}
	if err := mapio.Write(w, items); err != nil {
		fmt.Fprintf(os.Stderr, "datagen: %v\n", err)
		os.Exit(1)
	}
}
