// Command tracecheck validates a Perfetto/Chrome trace-event JSON file
// against the schema subset package timeline emits: a traceEvents array of
// named events with pid/tid, ts/dur on complete events, ids on flow events
// and args on metadata events. The CI smoke job runs every exported seed
// trace through it.
//
// Usage:
//
//	tracecheck trace.json        # or: tracecheck < trace.json
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"spjoin/internal/timeline"
)

func main() {
	flag.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: tracecheck [trace.json]")
		flag.PrintDefaults()
	}
	flag.Parse()

	var data []byte
	var err error
	name := "<stdin>"
	switch flag.NArg() {
	case 0:
		data, err = io.ReadAll(os.Stdin)
	case 1:
		name = flag.Arg(0)
		data, err = os.ReadFile(name)
	default:
		flag.Usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "tracecheck: %v\n", err)
		os.Exit(1)
	}
	if err := timeline.ValidateTraceEvents(data); err != nil {
		fmt.Fprintf(os.Stderr, "tracecheck: %s: %v\n", name, err)
		os.Exit(1)
	}
	fmt.Printf("tracecheck: %s: valid trace-event JSON (%d bytes)\n", name, len(data))
}
