package main

import (
	"bytes"
	"encoding/json"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"spjoin/internal/flight"
	"spjoin/internal/geom"
	"spjoin/internal/metrics"
	"spjoin/internal/tiger"
)

// TestPartitionCLIOutput pins the -engine partition summary: the curated
// partjoin.* table (headline counters plus the per-worker pair
// distribution) must appear in the command output when -metrics is on.
func TestPartitionCLIOutput(t *testing.T) {
	streets, mixed := tiger.Maps(0.01, 42)
	obs := &observability{reg: metrics.NewRegistry()}
	var out bytes.Buffer
	runPartition(&out, streets, mixed, 4, 0, 0, obs, nil, nil)
	text := out.String()
	for _, want := range []string{
		"partition join with 4 goroutines",
		"Partition engine metrics (partjoin.*)",
		"filter kernel",
		"non-empty partitions",
		"comparisons",
		"duplicates suppressed",
		"pairs/worker min/mean/max",
		"pairs/worker skew (max/mean)",
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("partition output missing %q:\n%s", want, text)
		}
	}
	if !strings.Contains(text, geom.KernelName()) {
		t.Fatalf("summary does not name the active kernel %q:\n%s", geom.KernelName(), text)
	}
}

// TestKernelSummaryRow pins the -kernel flag's effect on the summary: under
// the forced scalar path the table must say "purego" regardless of CPU.
func TestKernelSummaryRow(t *testing.T) {
	defer geom.SetKernel("auto")
	if err := geom.SetKernel("purego"); err != nil {
		t.Fatal(err)
	}
	reg := metrics.NewRegistry()
	reg.Counter("partjoin.partitions").Add(1)
	var out bytes.Buffer
	renderPartitionSummary(&out, reg.Snapshot(), nil)
	if !strings.Contains(out.String(), "purego") {
		t.Fatalf("summary missing forced kernel path:\n%s", out.String())
	}
}

// Without a registry (-metrics off) the summary table is absent but the
// plain report still prints.
func TestPartitionCLIOutputNoRegistry(t *testing.T) {
	streets, mixed := tiger.Maps(0.01, 42)
	var out bytes.Buffer
	runPartition(&out, streets, mixed, 2, 0, 0, &observability{}, nil, nil)
	if strings.Contains(out.String(), "Partition engine metrics") {
		t.Fatalf("summary table printed without a registry:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "candidates:") {
		t.Fatalf("plain report missing:\n%s", out.String())
	}
}

func TestRenderPartitionSummarySkew(t *testing.T) {
	reg := metrics.NewRegistry()
	reg.Counter("partjoin.partitions").Add(7)
	reg.Counter("partjoin.worker.0.pairs").Add(100)
	reg.Counter("partjoin.worker.1.pairs").Add(300)
	var out bytes.Buffer
	renderPartitionSummary(&out, reg.Snapshot(), nil)
	// mean 200, max 300 -> skew 1.50.
	if !strings.Contains(out.String(), "100 / 200.0 / 300") || !strings.Contains(out.String(), "1.50") {
		t.Fatalf("distribution rows wrong:\n%s", out.String())
	}
}

// TestMetricsEndpoint pins the /metrics handler: OpenMetrics content type
// and a payload the exposition parser round-trips.
func TestMetricsEndpoint(t *testing.T) {
	reg := metrics.NewRegistry()
	reg.Counter("sim.disk.reads.directory").Add(123)
	reg.Gauge("sim.response_s").Set(154.5)
	srv := httptest.NewServer(metricsHandler(reg))
	defer srv.Close()
	resp, err := srv.Client().Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "application/openmetrics-text") {
		t.Fatalf("content type = %q", ct)
	}
	var body bytes.Buffer
	if _, err := body.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	text := body.String()
	for _, want := range []string{
		"# TYPE sim_disk_reads_directory counter",
		"sim_disk_reads_directory_total 123",
		"sim_response_s 154.5",
		"# EOF",
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("exposition missing %q:\n%s", want, text)
		}
	}
}

// Guard against accidental engine coupling: the handler serves whatever
// registry the run populated, including tree-engine counters.
func TestMetricsEndpointTreeCounters(t *testing.T) {
	reg := metrics.NewRegistry()
	reg.Counter("sim.join.candidates").Add(9)
	rec := httptest.NewRecorder()
	metricsHandler(reg).ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if !strings.Contains(rec.Body.String(), "sim_join_candidates_total 9") {
		t.Fatalf("tree counter missing:\n%s", rec.Body.String())
	}
}

// TestPartitionExplainReport pins -explain: the EXPLAIN ANALYZE report
// follows the partition summary and the execution lands in the flight
// recorder with the captured plan attached.
func TestPartitionExplainReport(t *testing.T) {
	streets, mixed := tiger.Maps(0.01, 42)
	intro := &introspection{
		flights: flight.NewRecorder(4),
		planRec: flight.Plan{Source: "forced", Engine: "partition", Workers: 4},
		explain: true,
	}
	var out bytes.Buffer
	runPartition(&out, streets, mixed, 4, 0, 0, &observability{}, nil, intro)
	text := out.String()
	for _, want := range []string{
		"JOIN #1", "engine=partition",
		"plan (forced): engine=partition",
		"phases (pipelined:", "pipeline",
		"workers (pairs):",
		"top work units",
		"tile cost heat",
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("explain output missing %q:\n%s", want, text)
		}
	}
	last, ok := intro.flights.Last()
	if !ok || last.Engine != "partition" || last.Plan.Source != "forced" {
		t.Fatalf("flight record not captured: ok=%v %+v", ok, last)
	}
	if last.Candidates == 0 || last.WallNS <= 0 || len(last.WorkerPairs) != 4 {
		t.Fatalf("flight record incomplete: %+v", last)
	}
	if len(last.TopTiles) == 0 || last.HeatW == 0 {
		t.Fatalf("introspection payload missing: %+v", last)
	}
}

// Without -explain the join is still recorded (always-on) but no report
// is printed; a generous -slowlog threshold stays silent too.
func TestPartitionFlightAlwaysOnSilent(t *testing.T) {
	streets, mixed := tiger.Maps(0.01, 42)
	intro := &introspection{flights: flight.NewRecorder(4), slowlog: time.Hour}
	var out bytes.Buffer
	runPartition(&out, streets, mixed, 2, 0, 0, &observability{}, nil, intro)
	if strings.Contains(out.String(), "JOIN #") || strings.Contains(out.String(), "slowlog:") {
		t.Fatalf("silent run printed a report:\n%s", out.String())
	}
	if intro.flights.Len() != 1 {
		t.Fatalf("flight recorder holds %d records, want 1", intro.flights.Len())
	}
	// A 0 threshold that every join breaches prints via the slowlog path.
	intro2 := &introspection{flights: flight.NewRecorder(4), slowlog: time.Nanosecond}
	out.Reset()
	runPartition(&out, streets, mixed, 2, 0, 0, &observability{}, nil, intro2)
	if !strings.Contains(out.String(), "slowlog: join exceeded") ||
		!strings.Contains(out.String(), "JOIN #1") {
		t.Fatalf("slowlog breach did not print the report:\n%s", out.String())
	}
}

// TestJoinsEndpoint pins /debug/joins: JSON array, oldest first, with the
// phase timings and plan visible to a scraper.
func TestJoinsEndpoint(t *testing.T) {
	streets, mixed := tiger.Maps(0.01, 42)
	intro := &introspection{
		flights: flight.NewRecorder(4),
		planRec: flight.Plan{Source: "auto", Engine: "partition", Grid: 12, Workers: 2, Skew: 3.3},
	}
	var out bytes.Buffer
	runPartition(&out, streets, mixed, 2, 0, 0, &observability{}, nil, intro)
	rec := httptest.NewRecorder()
	joinsHandler(intro.flights).ServeHTTP(rec, httptest.NewRequest("GET", "/debug/joins", nil))
	if ct := rec.Header().Get("Content-Type"); ct != "application/json" {
		t.Fatalf("content type = %q", ct)
	}
	var got []flight.Record
	if err := json.Unmarshal(rec.Body.Bytes(), &got); err != nil {
		t.Fatalf("decode /debug/joins: %v\n%s", err, rec.Body.String())
	}
	if len(got) != 1 || got[0].Engine != "partition" || got[0].Plan.Grid != 12 {
		t.Fatalf("unexpected payload: %+v", got)
	}
	var phaseSum int64
	for _, ns := range got[0].PhaseNS {
		phaseSum += ns
	}
	if phaseSum <= 0 {
		t.Fatalf("phase timings absent from the JSON payload: %+v", got[0].PhaseNS)
	}
}

// TestExplainObservesMetrics pins the OpenMetrics wiring: a recorded join
// feeds the phase histograms and plan gauges scraped at /metrics.
func TestExplainObservesMetrics(t *testing.T) {
	streets, mixed := tiger.Maps(0.01, 42)
	obs := &observability{reg: metrics.NewRegistry()}
	intro := &introspection{
		flights: flight.NewRecorder(4),
		planRec: flight.Plan{
			Source: "auto", Engine: "partition", Grid: 12, Workers: 2,
			NR: len(streets), NS: len(mixed), Skew: 3.3, Rep: 1.1,
		},
	}
	var out bytes.Buffer
	runPartition(&out, streets, mixed, 2, 0, 0, obs, nil, intro)
	if got := obs.reg.Counter("flight.joins").Load(); got != 1 {
		t.Fatalf("flight.joins=%d", got)
	}
	if got := obs.reg.Gauge("plan.grid").Load(); got != 12 {
		t.Fatalf("plan.grid=%v", got)
	}
	rec := httptest.NewRecorder()
	metricsHandler(obs.reg).ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	for _, want := range []string{"flight_joins_total 1", "plan_grid 12", "flight_phase_us_sweep"} {
		if !strings.Contains(rec.Body.String(), want) {
			t.Fatalf("exposition missing %q:\n%s", want, rec.Body.String())
		}
	}
	// The partition summary surfaces the plan rows.
	if !strings.Contains(out.String(), "plan engine") || !strings.Contains(out.String(), "plan skew") {
		t.Fatalf("summary missing plan rows:\n%s", out.String())
	}
}

// TestExplainSVGOutput pins -explain-svg: a standalone SVG heatmap lands
// at the requested path.
func TestExplainSVGOutput(t *testing.T) {
	streets, mixed := tiger.Maps(0.01, 42)
	path := filepath.Join(t.TempDir(), "heat.svg")
	intro := &introspection{flights: flight.NewRecorder(4), svgPath: path}
	var out bytes.Buffer
	runPartition(&out, streets, mixed, 2, 0, 0, &observability{}, nil, intro)
	buf, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("heatmap SVG not written: %v", err)
	}
	if !strings.HasPrefix(string(buf), "<svg xmlns=") {
		t.Fatalf("not an SVG document:\n%.120s", buf)
	}
	if !strings.Contains(out.String(), "heatmap:") {
		t.Fatalf("output does not mention the heatmap path:\n%s", out.String())
	}
}
