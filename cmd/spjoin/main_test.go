package main

import (
	"bytes"
	"net/http/httptest"
	"strings"
	"testing"

	"spjoin/internal/geom"
	"spjoin/internal/metrics"
	"spjoin/internal/tiger"
)

// TestPartitionCLIOutput pins the -engine partition summary: the curated
// partjoin.* table (headline counters plus the per-worker pair
// distribution) must appear in the command output when -metrics is on.
func TestPartitionCLIOutput(t *testing.T) {
	streets, mixed := tiger.Maps(0.01, 42)
	obs := &observability{reg: metrics.NewRegistry()}
	var out bytes.Buffer
	runPartition(&out, streets, mixed, 4, 0, 0, obs, nil)
	text := out.String()
	for _, want := range []string{
		"partition join with 4 goroutines",
		"Partition engine metrics (partjoin.*)",
		"filter kernel",
		"non-empty partitions",
		"comparisons",
		"duplicates suppressed",
		"pairs/worker min/mean/max",
		"pairs/worker skew (max/mean)",
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("partition output missing %q:\n%s", want, text)
		}
	}
	if !strings.Contains(text, geom.KernelName()) {
		t.Fatalf("summary does not name the active kernel %q:\n%s", geom.KernelName(), text)
	}
}

// TestKernelSummaryRow pins the -kernel flag's effect on the summary: under
// the forced scalar path the table must say "purego" regardless of CPU.
func TestKernelSummaryRow(t *testing.T) {
	defer geom.SetKernel("auto")
	if err := geom.SetKernel("purego"); err != nil {
		t.Fatal(err)
	}
	reg := metrics.NewRegistry()
	reg.Counter("partjoin.partitions").Add(1)
	var out bytes.Buffer
	renderPartitionSummary(&out, reg.Snapshot())
	if !strings.Contains(out.String(), "purego") {
		t.Fatalf("summary missing forced kernel path:\n%s", out.String())
	}
}

// Without a registry (-metrics off) the summary table is absent but the
// plain report still prints.
func TestPartitionCLIOutputNoRegistry(t *testing.T) {
	streets, mixed := tiger.Maps(0.01, 42)
	var out bytes.Buffer
	runPartition(&out, streets, mixed, 2, 0, 0, &observability{}, nil)
	if strings.Contains(out.String(), "Partition engine metrics") {
		t.Fatalf("summary table printed without a registry:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "candidates:") {
		t.Fatalf("plain report missing:\n%s", out.String())
	}
}

func TestRenderPartitionSummarySkew(t *testing.T) {
	reg := metrics.NewRegistry()
	reg.Counter("partjoin.partitions").Add(7)
	reg.Counter("partjoin.worker.0.pairs").Add(100)
	reg.Counter("partjoin.worker.1.pairs").Add(300)
	var out bytes.Buffer
	renderPartitionSummary(&out, reg.Snapshot())
	// mean 200, max 300 -> skew 1.50.
	if !strings.Contains(out.String(), "100 / 200.0 / 300") || !strings.Contains(out.String(), "1.50") {
		t.Fatalf("distribution rows wrong:\n%s", out.String())
	}
}

// TestMetricsEndpoint pins the /metrics handler: OpenMetrics content type
// and a payload the exposition parser round-trips.
func TestMetricsEndpoint(t *testing.T) {
	reg := metrics.NewRegistry()
	reg.Counter("sim.disk.reads.directory").Add(123)
	reg.Gauge("sim.response_s").Set(154.5)
	srv := httptest.NewServer(metricsHandler(reg))
	defer srv.Close()
	resp, err := srv.Client().Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "application/openmetrics-text") {
		t.Fatalf("content type = %q", ct)
	}
	var body bytes.Buffer
	if _, err := body.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	text := body.String()
	for _, want := range []string{
		"# TYPE sim_disk_reads_directory counter",
		"sim_disk_reads_directory_total 123",
		"sim_response_s 154.5",
		"# EOF",
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("exposition missing %q:\n%s", want, text)
		}
	}
}

// Guard against accidental engine coupling: the handler serves whatever
// registry the run populated, including tree-engine counters.
func TestMetricsEndpointTreeCounters(t *testing.T) {
	reg := metrics.NewRegistry()
	reg.Counter("sim.join.candidates").Add(9)
	rec := httptest.NewRecorder()
	metricsHandler(reg).ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if !strings.Contains(rec.Body.String(), "sim_join_candidates_total 9") {
		t.Fatalf("tree counter missing:\n%s", rec.Body.String())
	}
}
