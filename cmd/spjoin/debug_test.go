package main

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"spjoin/internal/flight"
	"spjoin/internal/metrics"
	"spjoin/internal/runtimeobs"
	"spjoin/internal/tiger"
)

// TestDebugMux is the regression for the old http.DefaultServeMux wiring:
// the debug endpoints live on a dedicated mux, so constructing it twice
// cannot double-register, and every endpoint answers 200 with the right
// shape.
func TestDebugMux(t *testing.T) {
	reg := metrics.NewRegistry()
	reg.Counter("partjoin.partitions").Add(3)
	flights := flight.NewRecorder(4)
	live := runtimeobs.NewLive()

	// Double construction must not panic (http.Handle on the global mux
	// panicked on the second registration).
	mux := newDebugMux(reg, flights, live)
	_ = newDebugMux(reg, flights, live)

	for path, wantBody := range map[string]string{
		"/debug/pprof/":     "profiles",
		"/debug/vars":       "cmdline",
		"/metrics":          "partjoin_partitions_total 3",
		"/debug/joins":      "[]",
		"/debug/joins/live": "[]",
	} {
		req := httptest.NewRequest(http.MethodGet, path, nil)
		rec := httptest.NewRecorder()
		mux.ServeHTTP(rec, req)
		if rec.Code != http.StatusOK {
			t.Errorf("%s -> %d", path, rec.Code)
		}
		if !strings.Contains(rec.Body.String(), wantBody) {
			t.Errorf("%s body missing %q:\n%.200s", path, wantBody, rec.Body.String())
		}
	}

	// The global mux must have stayed clean: the default mux serving our
	// paths would mean a stray http.Handle survived the refactor.
	req := httptest.NewRequest(http.MethodGet, "/debug/joins", nil)
	rec := httptest.NewRecorder()
	http.DefaultServeMux.ServeHTTP(rec, req)
	if rec.Code == http.StatusOK && strings.HasPrefix(rec.Body.String(), "[") {
		t.Error("/debug/joins answered on http.DefaultServeMux; handlers leaked to the global mux")
	}
}

// TestJoinsLiveEndpoint pins /debug/joins/live: an in-flight slot shows
// with its counters, a finished one disappears, and the idle answer is
// [] (not null).
func TestJoinsLiveEndpoint(t *testing.T) {
	live := runtimeobs.NewLive()
	mux := newDebugMux(metrics.NewRegistry(), flight.NewRecorder(4), live)
	get := func() []runtimeobs.Status {
		t.Helper()
		req := httptest.NewRequest(http.MethodGet, "/debug/joins/live", nil)
		rec := httptest.NewRecorder()
		mux.ServeHTTP(rec, req)
		if rec.Code != http.StatusOK {
			t.Fatalf("live endpoint -> %d", rec.Code)
		}
		var out []runtimeobs.Status
		if err := json.Unmarshal(rec.Body.Bytes(), &out); err != nil {
			t.Fatalf("live endpoint not JSON: %v\n%s", err, rec.Body.String())
		}
		return out
	}

	if got := get(); len(got) != 0 {
		t.Fatalf("idle live snapshot: %+v", got)
	}
	p := live.NewProgress("partition")
	p.Start()
	p.SetTotal(10, 100)
	p.UnitDone(40)
	got := get()
	if len(got) != 1 || got[0].Engine != "partition" {
		t.Fatalf("in-flight join missing: %+v", got)
	}
	if got[0].UnitsDone != 1 || got[0].UnitsTotal != 10 || got[0].CostDone != 40 {
		t.Fatalf("live counters wrong: %+v", got[0])
	}
	p.Finish()
	if got := get(); len(got) != 0 {
		t.Fatalf("finished join still live: %+v", got)
	}
}

// TestDebugEndpointsConcurrent hammers /debug/joins and /debug/joins/live
// while real partition joins run; under -race this pins that the flight
// ring's snapshot deep-copies and the live registry never race with the
// recorder's slot reuse or the engines' hot-path publishing.
func TestDebugEndpointsConcurrent(t *testing.T) {
	streets, mixed := tiger.Maps(0.01, 42)
	flights := flight.NewRecorder(2) // tiny ring -> slot reuse under load
	live := runtimeobs.NewLive()
	mux := newDebugMux(metrics.NewRegistry(), flights, live)

	intro := &introspection{
		flights:  flights,
		health:   runtimeobs.NewSampler(),
		progress: live.NewProgress("partition"),
	}
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for g := 0; g < 2; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				for _, path := range []string{"/debug/joins", "/debug/joins/live"} {
					req := httptest.NewRequest(http.MethodGet, path, nil)
					rec := httptest.NewRecorder()
					mux.ServeHTTP(rec, req)
					if rec.Code != http.StatusOK {
						t.Errorf("%s -> %d", path, rec.Code)
						return
					}
				}
			}
		}()
	}
	for i := 0; i < 6; i++ {
		runPartition(io.Discard, streets, mixed, 4, 0, 0, &observability{}, nil, intro)
	}
	close(stop)
	wg.Wait()
}

// TestPartitionExplainHealthSection pins the acceptance criterion: a
// sampled partition join's EXPLAIN report carries the "runtime health"
// section with the four attribution rows, and the flight record stores
// the window.
func TestPartitionExplainHealthSection(t *testing.T) {
	streets, mixed := tiger.Maps(0.01, 42)
	intro := &introspection{
		flights:  flight.NewRecorder(4),
		explain:  true,
		health:   runtimeobs.NewSampler(),
		progress: runtimeobs.NewProgress("partition"),
	}
	var out bytes.Buffer
	runPartition(&out, streets, mixed, 4, 0, 0, &observability{}, nil, intro)
	text := out.String()
	for _, want := range []string{
		"runtime health (",
		"work", "gc-pause", "sched-delay", "contention",
		"goroutines:",
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("explain output missing %q:\n%s", want, text)
		}
	}
	last, ok := intro.flights.Last()
	if !ok || !last.Health.Sampled {
		t.Fatalf("flight record lost the health window: ok=%v %+v", ok, last.Health)
	}
	if got := last.Health.WorkNS + last.Health.GCNS + last.Health.SchedNS +
		last.Health.ContentionNS; got != last.Health.WallNS {
		t.Fatalf("recorded attribution does not tile the wall: %d != %d", got, last.Health.WallNS)
	}
}

// TestGenerateDistributions pins the -dist workload shapes.
func TestGenerateDistributions(t *testing.T) {
	for _, dist := range []string{"uniform", "gauss", "diag"} {
		r, s, err := generate(dist, 0.01, 42)
		if err != nil {
			t.Fatalf("%s: %v", dist, err)
		}
		if len(r) == 0 || len(s) == 0 {
			t.Fatalf("%s: empty relations %d/%d", dist, len(r), len(s))
		}
	}
	if _, _, err := generate("bogus", 0.01, 42); err == nil {
		t.Fatal("unknown distribution accepted")
	}
	// The skewed shapes must actually be skewed (that is their point).
	g, _, _ := generate("gauss", 0.1, 42)
	u, _, _ := generate("uniform", 0.1, 42)
	if gs, us := tiger.OccupancySkew(g, 16), tiger.OccupancySkew(u, 16); gs <= us {
		t.Fatalf("gauss skew %.2f not above uniform %.2f", gs, us)
	}
}
