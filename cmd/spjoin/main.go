// Command spjoin runs one parallel spatial join — either simulated on the
// virtual shared-virtual-memory machine (default, reporting the paper's
// measures) or natively with goroutines (-native).
//
// Usage:
//
//	spjoin [-scale 0.1] [-seed 42] [-dist uniform|gauss|diag]
//	       [-procs 8] [-disks 8] [-buffer 800]
//	       [-engine tree|partition|auto] [-grid 0] [-refine 0]
//	       [-variant gd|gsrr|lsr|sn|est] [-reassign none|root|all]
//	       [-victim loaded|random] [-native] [-repeat 1]
//	       [-kernel auto|purego] [-printkernel]
//	       [-metrics out.json] [-trace out.jsonl]
//	       [-timeline out.json] [-report] [-pprof :6060]
//	       [-explain] [-slowlog 50ms] [-explain-svg heat.svg]
//	       [-loadR r.csv -loadS s.csv]
//
// -engine=partition joins the raw rectangle sets with the grid-partitioned
// in-memory engine (internal/partjoin): no trees are built and execution is
// always native. -grid fixes the grid side (0 picks it from the input
// size) and -refine sets the adaptive tile-refinement threshold (0 = auto,
// negative = off). -engine=auto probes the inputs with internal/plan and
// picks engine, grid, refinement and workers itself (printing the
// decision). The default tree engine simulates the paper's machine, or
// runs the native tree join with -native.
//
// -timeline writes a Perfetto/Chrome trace-event file (open it at
// ui.perfetto.dev); -report prints the critical-path attribution and the
// per-processor utilization/skew tables; -pprof serves net/http/pprof and
// expvar (including a live metrics snapshot) on the given address for the
// duration of the run.
//
// Every native join (partition or -native tree) lands in an always-on
// flight recorder (internal/flight) and is bracketed by a runtime health
// window (internal/runtimeobs): the EXPLAIN report attributes the join's
// wall time across work, GC pauses, scheduler delay and lock contention.
// -explain prints the EXPLAIN ANALYZE report for the run; -slowlog prints
// it only when the join's wall time exceeds the given threshold;
// -explain-svg additionally writes the tile-cost heatmap as SVG. With
// -pprof, /debug/joins serves the recorded executions as JSON and
// /debug/joins/live the progress (done/total work units, ETA) of joins
// currently in flight — useful with -repeat, which re-runs the native
// join N times so there is something in flight to watch.
package main

import (
	"encoding/json"
	"expvar"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"runtime"
	"sort"
	"strings"
	"time"

	"spjoin/internal/flight"
	"spjoin/internal/geom"
	"spjoin/internal/mapio"
	"spjoin/internal/metrics"
	"spjoin/internal/parjoin"
	"spjoin/internal/parnative"
	"spjoin/internal/partjoin"
	"spjoin/internal/plan"
	"spjoin/internal/report"
	"spjoin/internal/rtree"
	"spjoin/internal/runtimeobs"
	"spjoin/internal/sim"
	"spjoin/internal/stats"
	"spjoin/internal/tiger"
	"spjoin/internal/timeline"
)

// observability bundles the optional -metrics registry and -trace sink.
type observability struct {
	reg         *metrics.Registry
	sink        *metrics.JSONLSink
	traceFile   *os.File
	metricsPath string
	tracePath   string
}

// newObservability opens the requested outputs; empty paths disable them.
func newObservability(metricsPath, tracePath string) (*observability, error) {
	o := &observability{metricsPath: metricsPath, tracePath: tracePath}
	if metricsPath != "" {
		o.reg = metrics.NewRegistry()
	}
	if tracePath != "" {
		f, err := os.Create(tracePath)
		if err != nil {
			return nil, err
		}
		o.traceFile = f
		o.sink = metrics.NewJSONLSink(f)
	}
	return o, nil
}

// trace returns the sink as the interface type, nil when tracing is off
// (a typed-nil *JSONLSink inside a TraceSink would defeat the emit guards).
func (o *observability) trace() metrics.TraceSink {
	if o.sink == nil {
		return nil
	}
	return o.sink
}

// finish writes the metrics snapshot, flushes the trace, and prints a
// summary table of every registered instrument.
func (o *observability) finish() error {
	if o.sink != nil {
		if err := o.sink.Flush(); err != nil {
			return fmt.Errorf("flush trace: %w", err)
		}
		if err := o.traceFile.Close(); err != nil {
			return err
		}
		fmt.Printf("trace:                  %d events -> %s\n", o.sink.Events(), o.tracePath)
	}
	if o.reg == nil || o.metricsPath == "" {
		// -pprof alone creates a registry for the expvar snapshot without a
		// metrics output file; nothing to write then.
		return nil
	}
	f, err := os.Create(o.metricsPath)
	if err != nil {
		return err
	}
	if err := o.reg.WriteJSON(f); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Printf("metrics:                %s\n\n", o.metricsPath)
	renderSnapshot(o.reg.Snapshot())
	return nil
}

// renderSnapshot prints every counter, gauge and histogram as an aligned
// table, sorted by name so the output is reproducible.
func renderSnapshot(snap metrics.Snapshot) {
	t := stats.NewTable("Metrics", "name", "value")
	names := make([]string, 0, len(snap.Counters))
	for name := range snap.Counters {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		t.AddRow(name, snap.Counters[name])
	}
	names = names[:0]
	for name := range snap.Gauges {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		t.AddRow(name, fmt.Sprintf("%.3f", snap.Gauges[name]))
	}
	names = names[:0]
	for name := range snap.Histograms {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		h := snap.Histograms[name]
		cells := make([]string, 0, len(h.Counts))
		for i, c := range h.Counts {
			bound := "inf"
			if i < len(h.Bounds) {
				bound = fmt.Sprintf("%d", h.Bounds[i])
			}
			cells = append(cells, fmt.Sprintf("le%s:%d", bound, c))
		}
		t.AddRow(name, fmt.Sprintf("n=%d sum=%d [%s]", h.Count, h.Sum, strings.Join(cells, " ")))
	}
	t.Render(os.Stdout)
}

// introspection bundles the flight recorder and the report triggers for
// the native join paths. The zero value records nothing (tests use it);
// main always wires a recorder so /debug/joins has history even when no
// report was asked for.
type introspection struct {
	flights *flight.Recorder
	planRec flight.Plan   // captured planner decision, zero when none
	explain bool          // always print the EXPLAIN report
	slowlog time.Duration // print it when wall time exceeds this (>0)
	svgPath string        // write the tile-cost heatmap SVG here

	// Runtime health: health brackets each join with a runtime/metrics
	// window (nil = no sampling, as in the zero value), and progress is
	// the live-progress slot the engine publishes to (served by
	// /debug/joins/live when -pprof mounted the registry).
	health   *runtimeobs.Sampler
	progress *runtimeobs.Progress
}

// wantIntrospect reports whether the engine should spend the (bounded)
// extra work of collecting tile-cost introspection.
func (in *introspection) wantIntrospect() bool {
	return in.explain || in.slowlog > 0 || in.svgPath != ""
}

// record captures one execution: ring, metrics export, and — when -explain
// asked for it or the join breached -slowlog — the EXPLAIN report and SVG.
func (in *introspection) record(out io.Writer, reg *metrics.Registry, rec *flight.Record) {
	rec.Start = time.Now().Add(-time.Duration(rec.WallNS))
	rec.Plan = in.planRec
	rec.Seq = in.flights.Add(rec)
	flight.Observe(reg, rec)
	slow := in.slowlog > 0 && rec.WallNS >= in.slowlog.Nanoseconds()
	if slow {
		fmt.Fprintf(out, "\nslowlog: join exceeded %v\n", in.slowlog)
	}
	if in.explain || slow {
		fmt.Fprintln(out)
		flight.Explain(out, rec)
	}
	if in.svgPath != "" && rec.HeatW > 0 {
		svg, err := report.HeatmapSVG("tile cost heat", rec.HeatW, rec.HeatH, rec.Heat)
		if err == nil {
			err = os.WriteFile(in.svgPath, []byte(svg), 0o644)
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "spjoin: -explain-svg: %v\n", err)
			return
		}
		fmt.Fprintf(out, "heatmap:      %s\n", in.svgPath)
	}
}

// joinsHandler serves the flight recorder's history as JSON (oldest
// first), mounted as /debug/joins on the -pprof mux.
func joinsHandler(flights *flight.Recorder) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		if err := enc.Encode(flights.Snapshot()); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
}

// liveHandler serves the in-flight joins (runtimeobs live-progress
// snapshot) as JSON, mounted as /debug/joins/live. An idle process
// serves [], never null, so pollers can range unconditionally.
func liveHandler(live *runtimeobs.Live) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		snap := live.Snapshot()
		if snap == nil {
			snap = []runtimeobs.Status{}
		}
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		if err := enc.Encode(snap); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
}

// newDebugMux assembles the -pprof endpoint set on a dedicated mux:
// net/http/pprof, expvar, OpenMetrics, and the flight-recorder views.
// A dedicated mux (instead of http.DefaultServeMux) keeps the handlers
// testable and makes double registration impossible by construction.
func newDebugMux(reg *metrics.Registry, flights *flight.Recorder, live *runtimeobs.Live) *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.Handle("/debug/vars", expvar.Handler())
	mux.Handle("/metrics", metricsHandler(reg))
	mux.Handle("/debug/joins", joinsHandler(flights))
	mux.Handle("/debug/joins/live", liveHandler(live))
	return mux
}

func main() {
	scale := flag.Float64("scale", 0.1, "workload scale (1.0 = paper cardinalities)")
	seed := flag.Int64("seed", 42, "workload generator seed")
	procs := flag.Int("procs", 8, "simulated processors (or goroutines with -native)")
	disks := flag.Int("disks", 8, "simulated disks")
	bufferPages := flag.Int("buffer", 800, "total LRU buffer size in pages")
	engine := flag.String("engine", "tree", "join engine: tree (R-tree based) | partition (grid-partitioned, native) | auto (planner picks)")
	grid := flag.Int("grid", 0, "partition engine grid side (0 = choose from input size)")
	refine := flag.Int64("refine", 0, "partition tile refinement threshold (0 = auto, negative = off)")
	variant := flag.String("variant", "gd", "lsr | gsrr | gd | sn (shared-nothing) | est (estimated static)")
	reassign := flag.String("reassign", "all", "task reassignment: none | root | all")
	victim := flag.String("victim", "loaded", "victim selection: loaded | random")
	native := flag.Bool("native", false, "run natively with goroutines instead of simulating")
	kernel := flag.String("kernel", "auto", "filter kernel path: auto (best for this CPU) | purego (scalar fallback)")
	printKernel := flag.Bool("printkernel", false, "print the active filter kernel path and exit")
	metricsOut := flag.String("metrics", "", "write a JSON metrics snapshot to this file")
	traceOut := flag.String("trace", "", "write a JSONL event trace to this file")
	timelineOut := flag.String("timeline", "", "write a Perfetto trace-event timeline to this file")
	reportFlag := flag.Bool("report", false, "print the critical-path / load-balance report")
	pprofAddr := flag.String("pprof", "", "serve net/http/pprof and expvar on this address (e.g. :6060)")
	explain := flag.Bool("explain", false, "print an EXPLAIN ANALYZE report for the native join")
	slowlog := flag.Duration("slowlog", 0, "print the EXPLAIN report when the join exceeds this wall time (e.g. 50ms)")
	explainSVG := flag.String("explain-svg", "", "write the tile-cost heatmap SVG to this file (implies introspection)")
	loadR := flag.String("loadR", "", "CSV file for relation R (default: generated streets)")
	loadS := flag.String("loadS", "", "CSV file for relation S (default: generated mixed features)")
	dist := flag.String("dist", "uniform", "generated workload shape: uniform (TIGER-like maps) | gauss (clustered hotspots) | diag (diagonal band)")
	repeat := flag.Int("repeat", 1, "run the native join this many times (reports the last; earlier iterations feed /debug/joins and /debug/joins/live)")
	flag.Parse()

	if err := geom.SetKernel(*kernel); err != nil {
		fmt.Fprintf(os.Stderr, "spjoin: -kernel: %v\n", err)
		os.Exit(2)
	}
	if *printKernel {
		fmt.Println(geom.KernelName())
		return
	}

	obs, err := newObservability(*metricsOut, *traceOut)
	if err != nil {
		fmt.Fprintf(os.Stderr, "spjoin: %v\n", err)
		os.Exit(1)
	}
	live := runtimeobs.NewLive()
	intro := &introspection{
		flights: flight.NewRecorder(16),
		explain: *explain,
		slowlog: *slowlog,
		svgPath: *explainSVG,
		health:  runtimeobs.NewSampler(),
	}

	if *pprofAddr != "" {
		if obs.reg == nil {
			obs.reg = metrics.NewRegistry()
		}
		reg := obs.reg
		expvar.Publish("spjoin.metrics", expvar.Func(func() interface{} { return reg.Snapshot() }))
		mux := newDebugMux(reg, intro.flights, live)
		ln, err := net.Listen("tcp", *pprofAddr)
		if err != nil {
			fmt.Fprintf(os.Stderr, "spjoin: -pprof: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("pprof/expvar on http://%s/debug/pprof/, OpenMetrics on /metrics, flight recorder on /debug/joins, live progress on /debug/joins/live\n", ln.Addr())
		go http.Serve(ln, mux)
	}

	var streets, mixed []rtree.Item
	if *loadR != "" || *loadS != "" {
		if *loadR == "" || *loadS == "" {
			fmt.Fprintln(os.Stderr, "spjoin: -loadR and -loadS must be given together")
			os.Exit(2)
		}
		var err error
		if streets, err = loadCSV(*loadR); err != nil {
			fmt.Fprintf(os.Stderr, "spjoin: %v\n", err)
			os.Exit(1)
		}
		if mixed, err = loadCSV(*loadS); err != nil {
			fmt.Fprintf(os.Stderr, "spjoin: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("loaded %d + %d objects from %s, %s\n", len(streets), len(mixed), *loadR, *loadS)
	} else {
		fmt.Printf("generating %s maps at scale %g (seed %d)...\n", *dist, *scale, *seed)
		var err error
		if streets, mixed, err = generate(*dist, *scale, *seed); err != nil {
			fmt.Fprintf(os.Stderr, "spjoin: %v\n", err)
			os.Exit(2)
		}
	}
	if *engine == "auto" {
		// The planner probes the raw inputs and rewrites the engine flags
		// with its decision; execution then follows the ordinary paths
		// below, so auto runs exactly what a hand-picked invocation would.
		maxW := *procs
		if maxW <= 0 {
			maxW = runtime.GOMAXPROCS(0)
		}
		st := plan.Analyze(streets, mixed)
		d := plan.Decide(st, maxW)
		fmt.Printf("planner: n=%d+%d skew=%.2f replication=%.2f -> %v\n",
			st.NR, st.NS, st.Skew, st.Rep, d)
		intro.planRec = flight.Plan{
			Source: "auto", Engine: d.Engine.String(),
			Grid: d.Grid, RefineThreshold: d.RefineThreshold, Workers: d.Workers,
			NR: st.NR, NS: st.NS, Skew: st.Skew, Rep: st.Rep,
			Selectivity: st.Selectivity, Probe: st.Probe,
		}
		*procs = d.Workers
		if d.Engine == plan.EnginePartition {
			*engine = "partition"
			*grid = d.Grid
			*refine = d.RefineThreshold
		} else {
			*engine = "tree"
			*native = true
		}
	}
	switch *engine {
	case "partition":
		workers := *procs
		if workers <= 0 {
			workers = runtime.GOMAXPROCS(0)
		}
		if intro.planRec.Engine == "" {
			intro.planRec = flight.Plan{
				Source: "forced", Engine: "partition",
				Grid: *grid, RefineThreshold: *refine, Workers: workers,
			}
		}
		var rec *timeline.Recorder
		if *timelineOut != "" || *reportFlag {
			rec = timeline.NewWallRecorder(workers)
		}
		intro.progress = live.NewProgress("partition")
		for i := repeatCount(*repeat); i > 1; i-- {
			// Warm-up / soak iterations: full executions feeding the flight
			// recorder and the live endpoint, with the human reports muted.
			quiet := *intro
			quiet.explain, quiet.slowlog, quiet.svgPath = false, 0, ""
			runPartition(io.Discard, streets, mixed, workers, *grid, *refine, obs, nil, &quiet)
		}
		runPartition(os.Stdout, streets, mixed, workers, *grid, *refine, obs, rec, intro)
		if rec != nil {
			if err := finishTimeline(rec, *timelineOut, *reportFlag, rec.MaxEnd()); err != nil {
				fmt.Fprintf(os.Stderr, "spjoin: %v\n", err)
				os.Exit(1)
			}
		}
		if err := obs.finish(); err != nil {
			fmt.Fprintf(os.Stderr, "spjoin: %v\n", err)
			os.Exit(1)
		}
		return
	case "tree":
		// Fall through to the tree-based engines below.
	default:
		fmt.Fprintf(os.Stderr, "spjoin: unknown -engine %q\n", *engine)
		os.Exit(2)
	}

	t0 := time.Now()
	r := rtree.BulkLoadSTRParallel(rtree.DefaultParams(), streets, 0.73, 0)
	s := rtree.BulkLoadSTRParallel(rtree.DefaultParams(), mixed, 0.73, 0)
	fmt.Printf("trees built in %v: %d + %d objects, heights %d/%d\n\n",
		time.Since(t0).Round(time.Millisecond), r.Len(), s.Len(), r.Height(), s.Height())

	if *native {
		workers := *procs
		if workers <= 0 {
			workers = runtime.GOMAXPROCS(0)
		}
		if intro.planRec.Engine == "" {
			intro.planRec = flight.Plan{Source: "forced", Engine: "tree", Workers: workers}
		}
		var rec *timeline.Recorder
		if *timelineOut != "" || *reportFlag {
			rec = timeline.NewWallRecorder(workers)
		}
		intro.progress = live.NewProgress("tree")
		for i := repeatCount(*repeat); i > 1; i-- {
			quiet := *intro
			quiet.explain, quiet.slowlog, quiet.svgPath = false, 0, ""
			runNative(io.Discard, r, s, workers, obs, nil, &quiet)
		}
		runNative(os.Stdout, r, s, workers, obs, rec, intro)
		if rec != nil {
			// No simulated response time: the wall response is the latest
			// recorded span end.
			if err := finishTimeline(rec, *timelineOut, *reportFlag, rec.MaxEnd()); err != nil {
				fmt.Fprintf(os.Stderr, "spjoin: %v\n", err)
				os.Exit(1)
			}
		}
		if err := obs.finish(); err != nil {
			fmt.Fprintf(os.Stderr, "spjoin: %v\n", err)
			os.Exit(1)
		}
		return
	}

	if intro.wantIntrospect() {
		fmt.Fprintln(os.Stderr, "spjoin: -explain/-slowlog/-explain-svg apply to the native engines"+
			" (-engine partition, -engine auto, or -native); the simulated run keeps virtual time only")
	}

	var rec *timeline.Recorder
	if *timelineOut != "" || *reportFlag {
		rec = timeline.NewRecorder(*procs, *disks)
	}

	var cfg parjoin.Config
	switch *variant {
	case "sn":
		cfg = parjoin.DefaultConfig(*procs, *disks, *bufferPages)
		cfg.Buffer = parjoin.SharedNothingOrg
	case "est":
		cfg = parjoin.DefaultConfig(*procs, *disks, *bufferPages)
		cfg.Buffer = parjoin.LocalOrg
		cfg.Assign = parjoin.StaticEstimated
	default:
		cfg = parjoin.DefaultConfig(*procs, *disks, *bufferPages).Variant(*variant)
	}
	switch *reassign {
	case "none":
		cfg.Reassign = parjoin.ReassignNone
	case "root":
		cfg.Reassign = parjoin.ReassignRoot
	case "all":
		cfg.Reassign = parjoin.ReassignAll
	default:
		fmt.Fprintf(os.Stderr, "spjoin: unknown -reassign %q\n", *reassign)
		os.Exit(2)
	}
	switch *victim {
	case "loaded":
		cfg.Victim = parjoin.MostLoaded
	case "random":
		cfg.Victim = parjoin.RandomVictim
	default:
		fmt.Fprintf(os.Stderr, "spjoin: unknown -victim %q\n", *victim)
		os.Exit(2)
	}

	cfg.Metrics = obs.reg
	cfg.Trace = obs.trace()
	cfg.Timeline = rec

	t0 = time.Now()
	res := parjoin.Run(r, s, cfg)
	wall := time.Since(t0)

	fmt.Printf("variant %s (%s buffer, %s assignment), reassignment %s, victim %s\n",
		*variant, cfg.Buffer, cfg.Assign, cfg.Reassign, cfg.Victim)
	fmt.Printf("processors %d, disks %d, buffer %d pages\n\n", cfg.Procs, cfg.Disks, cfg.BufferPages)
	fmt.Printf("tasks created (m):      %d (subtree level %d)\n", res.TasksCreated, res.TaskLevel)
	fmt.Printf("candidates:             %d\n", res.Candidates)
	fmt.Printf("response time:          %.1f s (virtual)\n", res.ResponseTime.Seconds())
	fmt.Printf("first / avg finisher:   %.1f s / %.1f s\n", res.FirstFinish.Seconds(), res.AvgFinish.Seconds())
	fmt.Printf("total work:             %.1f s\n", res.TotalWork.Seconds())
	fmt.Printf("disk accesses:          %d (%d data pages)\n", res.DiskAccesses, res.DataDiskAccesses)
	fmt.Printf("buffer:                 %d local hits, %d remote hits, %d misses (hit rate %.1f%%)\n",
		res.Buffer.LocalHits, res.Buffer.RemoteHits, res.Buffer.Misses, res.Buffer.HitRate()*100)
	fmt.Printf("path buffer hits:       %d\n", res.PathBufferHits)
	fmt.Printf("task reassignments:     %d\n", res.Reassignments)
	fmt.Printf("simulated in:           %v wall time\n", wall.Round(time.Millisecond))
	if err := finishTimeline(rec, *timelineOut, *reportFlag, res.ResponseTime); err != nil {
		fmt.Fprintf(os.Stderr, "spjoin: %v\n", err)
		os.Exit(1)
	}
	if err := obs.finish(); err != nil {
		fmt.Fprintf(os.Stderr, "spjoin: %v\n", err)
		os.Exit(1)
	}
}

// finishTimeline writes the Perfetto export and/or prints the analyzer
// report; a nil recorder (profiling off) is a no-op.
func finishTimeline(rec *timeline.Recorder, path string, report bool, response sim.Time) error {
	if rec == nil {
		return nil
	}
	if path != "" {
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		if err := rec.WritePerfetto(f); err != nil {
			f.Close()
			return fmt.Errorf("write timeline: %w", err)
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Printf("timeline:               %d spans -> %s (open at ui.perfetto.dev)\n", rec.SpanCount(), path)
	}
	if report {
		fmt.Println()
		timeline.Analyze(rec, response).Render(os.Stdout)
	}
	return nil
}

// metricsHandler serves the registry as OpenMetrics text (the /metrics
// endpoint Prometheus scrapes), mounted on the -pprof mux.
func metricsHandler(reg *metrics.Registry) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/openmetrics-text; version=1.0.0; charset=utf-8")
		if err := reg.WritePrometheus(w); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
}

// repeatCount clamps -repeat to at least one execution.
func repeatCount(n int) int {
	if n < 1 {
		return 1
	}
	return n
}

// generate builds the two input relations for the requested distribution.
// uniform is the TIGER-like map pair the paper scales; gauss piles both
// sides into the same gaussian hotspots (the skewed workload the refined
// partition engine and the runtime-health smoke test exercise); diag
// lays both sides along a jittered diagonal band.
func generate(dist string, scale float64, seed int64) (streets, mixed []rtree.Item, err error) {
	n := int(120000 * scale)
	if n < 1000 {
		n = 1000
	}
	switch dist {
	case "uniform":
		streets, mixed = tiger.Maps(scale, seed)
	case "gauss":
		streets = tiger.GaussianClusters(n, 4, 2, 0.05, 41, seed)
		mixed = tiger.GaussianClusters(n, 4, 2, 0.05, 41, seed+1)
	case "diag":
		streets = tiger.DiagonalLine(n, 3, 0.3, seed)
		mixed = tiger.DiagonalLine(n, 3, 0.3, seed+1)
	default:
		return nil, nil, fmt.Errorf("unknown -dist %q (uniform | gauss | diag)", dist)
	}
	return streets, mixed, nil
}

func loadCSV(path string) ([]rtree.Item, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return mapio.Read(f)
}

func runPartition(out io.Writer, r, s []rtree.Item, workers, grid int, refine int64, obs *observability, rec *timeline.Recorder, intro *introspection) {
	cfg := partjoin.Config{
		Workers:         workers,
		Grid:            grid,
		RefineThreshold: refine,
		Metrics:         obs.reg,
		Timeline:        rec,
		Introspect:      intro != nil && intro.wantIntrospect(),
	}
	if intro != nil {
		cfg.Progress = intro.progress
		intro.health.Begin()
	}
	t0 := time.Now()
	res := partjoin.Join(r, s, cfg)
	wall := time.Since(t0)
	fmt.Fprintf(out, "partition join with %d goroutines\n", res.Workers)
	fmt.Fprintf(out, "grid:         %dx%d (%d work units)\n", res.GX, res.GY, res.Partitions)
	if res.RefinedTiles > 0 {
		fmt.Fprintf(out, "refined:      %d hot tiles -> %d subtiles\n", res.RefinedTiles, res.Subtiles)
	}
	fmt.Fprintf(out, "candidates:   %d\n", len(res.Candidates))
	fmt.Fprintf(out, "duplicates:   %d suppressed\n", res.Duplicates)
	fmt.Fprintf(out, "comparisons:  %d\n", res.Comparisons)
	fmt.Fprintf(out, "wall time:    %v\n", wall.Round(time.Microsecond))
	fmt.Fprintf(out, "pairs/worker: %v\n", res.PerWorker)
	if obs.reg != nil {
		fmt.Fprintln(out)
		renderPartitionSummary(out, obs.reg.Snapshot(), intro)
	}
	if intro != nil {
		frec := flight.Record{
			WallNS: wall.Nanoseconds(),
			Engine: "partition",
			NR:     len(r), NS: len(s),
			Candidates: len(res.Candidates), Comparisons: res.Comparisons,
			Duplicates: res.Duplicates,
			GX:         res.GX, GY: res.GY, Partitions: res.Partitions,
			RefinedTiles: res.RefinedTiles, Subtiles: res.Subtiles,
			PhaseNS:     res.PhaseNS,
			PipelineNS:  res.PipelineNS,
			WorkerPairs: toInt64s(res.PerWorker),
			TopTiles:    res.TopTiles,
			HeatW:       res.HeatW, HeatH: res.HeatH, Heat: res.Heat,
			Health:      intro.health.End(wall.Nanoseconds(), res.Workers),
		}
		intro.record(out, obs.reg, &frec)
	}
}

// toInt64s widens a per-worker count slice for the flight record.
func toInt64s(in []int) []int64 {
	if in == nil {
		return nil
	}
	out := make([]int64, len(in))
	for i, v := range in {
		out[i] = int64(v)
	}
	return out
}

// renderPartitionSummary prints the curated partjoin.* counter view: the
// headline counters plus the per-worker pair distribution (min/mean/max
// and max/mean skew, the load-balance measure the paper tracks), and —
// when a plan was captured — the planner's decision and driving stats.
func renderPartitionSummary(out io.Writer, snap metrics.Snapshot, intro *introspection) {
	t := stats.NewTable("Partition engine metrics (partjoin.*)", "measure", "value")
	t.AddRow("filter kernel", geom.KernelName())
	if intro != nil && intro.planRec.Engine != "" {
		p := &intro.planRec
		t.AddRow("plan source", p.Source)
		t.AddRow("plan engine", p.Engine)
		t.AddRow("plan grid", fmt.Sprintf("%dx%d", p.Grid, p.Grid))
		t.AddRow("plan workers", p.Workers)
		if p.NR > 0 || p.NS > 0 {
			t.AddRow("plan skew", fmt.Sprintf("%.2f", p.Skew))
			t.AddRow("plan replication", fmt.Sprintf("%.2f", p.Rep))
			t.AddRow("plan selectivity", fmt.Sprintf("%.3g", p.Selectivity))
		}
	}
	for _, row := range []struct{ label, counter string }{
		{"grid tiles", "partjoin.grid_tiles"},
		{"non-empty partitions", "partjoin.partitions"},
		{"refined tiles", "partjoin.refined_tiles"},
		{"subtiles", "partjoin.subtiles"},
		{"comparisons", "partjoin.comparisons"},
		{"candidates", "partjoin.candidates"},
		{"duplicates suppressed", "partjoin.duplicates_suppressed"},
		{"wall [ms]", "partjoin.wall_ms"},
	} {
		if v, ok := snap.Counters[row.counter]; ok {
			t.AddRow(row.label, v)
		}
	}
	var pairs []float64
	for name, v := range snap.Counters {
		if strings.HasPrefix(name, "partjoin.worker.") && strings.HasSuffix(name, ".pairs") {
			pairs = append(pairs, float64(v))
		}
	}
	if sum := stats.Summarize(pairs); sum.N > 0 {
		t.AddRow("pairs/worker min/mean/max", fmt.Sprintf("%.0f / %.1f / %.0f", sum.Min, sum.Mean, sum.Max))
		t.AddRow("pairs/worker skew (max/mean)", fmt.Sprintf("%.2f", sum.Skew()))
	}
	t.Render(out)
}

func runNative(out io.Writer, r, s *rtree.Tree, workers int, obs *observability, rec *timeline.Recorder, intro *introspection) {
	cfg := parnative.Config{
		Workers:  workers,
		Metrics:  obs.reg,
		Trace:    obs.trace(),
		Timeline: rec,
	}
	if intro != nil {
		cfg.Progress = intro.progress
		intro.health.Begin()
	}
	t0 := time.Now()
	res := parnative.Join(r, s, cfg)
	wall := time.Since(t0)
	fmt.Fprintf(out, "native parallel join with %d goroutines\n", res.Workers)
	fmt.Fprintf(out, "tasks (m):    %d\n", res.Tasks)
	fmt.Fprintf(out, "candidates:   %d\n", len(res.Candidates))
	fmt.Fprintf(out, "wall time:    %v\n", wall.Round(time.Microsecond))
	fmt.Fprintf(out, "pairs/worker: %v\n", res.PerWorker)
	fmt.Fprintf(out, "steals:       %d\n", res.Steals)
	if intro != nil {
		frec := flight.Record{
			WallNS: wall.Nanoseconds(),
			Engine: "tree",
			NR:     r.Len(), NS: s.Len(),
			Candidates: len(res.Candidates),
			Tasks:      res.Tasks, Steals: res.Steals, StealAttempts: res.StealAttempts,
			PhaseNS:      res.PhaseNS,
			WorkerPairs:  toInt64s(res.PerWorker),
			WorkerSteals: toInt64s(res.PerWorkerSteals),
			Health:       intro.health.End(wall.Nanoseconds(), res.Workers),
		}
		intro.record(out, obs.reg, &frec)
	}
}
