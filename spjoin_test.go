package spjoin

import (
	"path/filepath"
	"testing"
)

func sampleTrees(tb testing.TB) (*Tree, *Tree) {
	tb.Helper()
	streets, mixed := SampleMaps(0.01, 42)
	return BuildSTR(streets, 0.73), BuildSTR(mixed, 0.73)
}

func TestBuildAndJoin(t *testing.T) {
	streets, mixed := SampleMaps(0.005, 42)
	r := Build(streets)
	s := Build(mixed)
	seq := Join(r, s)
	par := JoinParallel(r, s, 4)
	if len(seq) != len(par) {
		t.Fatalf("sequential %d vs parallel %d candidates", len(seq), len(par))
	}
	seen := map[[2]ID]bool{}
	for _, c := range seq {
		seen[[2]ID{c.R, c.S}] = true
	}
	for _, c := range par {
		if !seen[[2]ID{c.R, c.S}] {
			t.Fatalf("parallel produced unexpected pair %v/%v", c.R, c.S)
		}
	}
}

func TestJoinParallelSortedDeterministic(t *testing.T) {
	r, s := sampleTrees(t)
	a := JoinParallel(r, s, 0)
	b := JoinParallel(r, s, 8)
	if len(a) != len(b) {
		t.Fatal("worker count changed the result size")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("results diverge at %d", i)
		}
	}
}

func TestSimulateSmoke(t *testing.T) {
	r, s := sampleTrees(t)
	res := Simulate(r, s, DefaultSimConfig(8, 8, 200))
	if res.Candidates == 0 {
		t.Fatal("simulation found no candidates")
	}
	if res.ResponseTime <= 0 {
		t.Fatal("no virtual time elapsed")
	}
	if res.Candidates != len(Join(r, s)) {
		t.Fatalf("simulated candidates %d != sequential %d", res.Candidates, len(Join(r, s)))
	}
}

func TestNewRect(t *testing.T) {
	r := NewRect(2, 3, 0, 1)
	if r.MinX != 0 || r.MinY != 1 || r.MaxX != 2 || r.MaxY != 3 {
		t.Fatalf("NewRect = %v", r)
	}
}

func TestDefaultTreeParams(t *testing.T) {
	p := DefaultTreeParams()
	if p.MaxDirEntries != 102 || p.MaxDataEntries != 26 {
		t.Fatalf("unexpected defaults: %+v", p)
	}
}

func TestSampleFeaturesAndJoinRefined(t *testing.T) {
	streets, mixed := SampleFeatures(0.01, 42)
	if len(streets) == 0 || len(mixed) == 0 {
		t.Fatal("no features generated")
	}
	r := BuildFeatures(streets)
	s := BuildFeatures(mixed)
	candidates := JoinParallel(r, s, 4)
	answers, falseHits := JoinRefined(r, s,
		func(id ID) Shape { return streets[id].Shape },
		func(id ID) Shape { return mixed[id].Shape }, 4)
	if len(answers)+falseHits != len(candidates) {
		t.Fatalf("answers %d + false hits %d != candidates %d",
			len(answers), falseHits, len(candidates))
	}
	// Every answer must pass the exact predicate; every rejected candidate
	// must fail it.
	for _, a := range answers {
		if !streets[a.R].Shape.Intersects(mixed[a.S].Shape) {
			t.Fatalf("answer %d/%d fails the exact test", a.R, a.S)
		}
	}
}

func TestShapeConstructors(t *testing.T) {
	seg := SegmentShape(0, 0, 2, 2)
	box := BoxShape(NewRect(1, 1, 3, 3))
	if !seg.Intersects(box) {
		t.Fatal("segment should hit box")
	}
	if seg.Intersects(BoxShape(NewRect(5, 5, 6, 6))) {
		t.Fatal("segment should miss far box")
	}
}

func TestSimConfigEnumsExported(t *testing.T) {
	cfg := DefaultSimConfig(2, 2, 10)
	cfg.Assign = StaticRange
	cfg.Buffer = LocalBuffers
	cfg.Reassign = ReassignRoot
	cfg.Victim = RandomVictim
	r, s := sampleTrees(t)
	res := Simulate(r, s, cfg)
	if res.Candidates == 0 {
		t.Fatal("configured simulation found nothing")
	}
	cfg.Buffer = GlobalBuffer
	cfg.Assign = Dynamic
	cfg.Reassign = ReassignAll
	cfg.Victim = MostLoaded
	res2 := Simulate(r, s, cfg)
	if res2.Candidates != res.Candidates {
		t.Fatal("variants disagree on candidates")
	}
}

func TestOutOfCoreFacade(t *testing.T) {
	r, s := sampleTrees(t)
	dir := t.TempDir()
	rPath := filepath.Join(dir, "r.spjf")
	sPath := filepath.Join(dir, "s.spjf")
	if err := SaveTree(r, rPath); err != nil {
		t.Fatal(err)
	}
	if err := SaveTree(s, sPath); err != nil {
		t.Fatal(err)
	}
	pr, closeR, err := OpenTree(rPath, 32)
	if err != nil {
		t.Fatal(err)
	}
	defer closeR()
	ps, closeS, err := OpenTree(sPath, 32)
	if err != nil {
		t.Fatal(err)
	}
	defer closeS()
	pairs, reads, err := JoinOutOfCore(pr, ps)
	if err != nil {
		t.Fatal(err)
	}
	if reads == 0 {
		t.Fatal("no physical reads")
	}
	if len(pairs) != len(Join(r, s)) {
		t.Fatalf("out-of-core found %d pairs, in-memory %d", len(pairs), len(Join(r, s)))
	}
}

func TestQueryWindowsFacade(t *testing.T) {
	r, _ := sampleTrees(t)
	windows := []Rect{
		NewRect(0, 0, 300, 300),
		NewRect(300, 300, 600, 600),
		NewRect(-10, -10, -5, -5), // empty
	}
	res := QueryWindows(r, windows, 4)
	if len(res) != 3 {
		t.Fatalf("got %d result sets", len(res))
	}
	if len(res[2]) != 0 {
		t.Fatalf("empty window returned %d ids", len(res[2]))
	}
	total := 0
	for _, ids := range res {
		total += len(ids)
	}
	if total == 0 {
		t.Fatal("no query results at all")
	}
}

func TestNearestNeighborsFacade(t *testing.T) {
	r, _ := sampleTrees(t)
	nn := NearestNeighbors(r, 300, 300, 5)
	if len(nn) != 5 {
		t.Fatalf("got %d neighbors", len(nn))
	}
	for i := 1; i < len(nn); i++ {
		if nn[i].Dist < nn[i-1].Dist {
			t.Fatal("neighbors not sorted by distance")
		}
	}
}
