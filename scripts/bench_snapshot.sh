#!/bin/sh
# Regenerates the committed benchmark snapshots:
#
#   BENCH_kernel.json    — join-kernel latency/allocation numbers
#   BENCH_partjoin.json  — partition-engine vs tree-engine head-to-head
#
# Run from the repository root after kernel or engine changes and commit
# the results so regressions show up in review.
#
# Usage: scripts/bench_snapshot.sh [benchtime]
set -eu
cd "$(dirname "$0")/.."

BENCHTIME="${1:-1000x}"

# The active filter-kernel dispatch (avx2/purego) is stamped into each
# snapshot: numbers taken under different kernels are not comparable, and
# bench_diff.sh refuses to diff across a mismatch.
KERNEL=$(go run ./cmd/spjoin -printkernel)

# snapshot OUT PKG PATTERN [PKG PATTERN]... — run each package's matching
# benchmarks and merge the results into one JSON snapshot.
snapshot() {
    out="$1"; shift
    {
        while [ "$#" -gt 0 ]; do
            go test -run='^$' -bench="$2" -benchmem -benchtime="$BENCHTIME" "$1"
            shift 2
        done
    } |
    awk -v benchtime="$BENCHTIME" -v kernel="$KERNEL" '
        /^goos:/    { goos = $2 }
        /^goarch:/  { goarch = $2 }
        /^cpu:/     { sub(/^cpu: */, ""); cpu = $0 }
        /^Benchmark/ {
            name = $1
            sub(/-[0-9]+$/, "", name)   # strip the -GOMAXPROCS suffix
            for (i = 2; i < NF; i++) {
                if ($(i+1) == "ns/op")     ns[name] = $i
                if ($(i+1) == "B/op")      bytes[name] = $i
                if ($(i+1) == "allocs/op") allocs[name] = $i
            }
            order[n++] = name
        }
        END {
            printf "{\n"
            printf "  \"goos\": \"%s\",\n", goos
            printf "  \"goarch\": \"%s\",\n", goarch
            printf "  \"cpu\": \"%s\",\n", cpu
            printf "  \"kernel\": \"%s\",\n", kernel
            printf "  \"benchtime\": \"%s\",\n", benchtime
            printf "  \"benchmarks\": [\n"
            for (i = 0; i < n; i++) {
                name = order[i]
                printf "    {\"name\": \"%s\", \"ns_per_op\": %s, \"bytes_per_op\": %s, \"allocs_per_op\": %s}%s\n", \
                    name, ns[name], bytes[name], allocs[name], (i < n-1 ? "," : "")
            }
            printf "  ]\n}\n"
        }
    ' > "$out"
    echo "wrote $out:"
    cat "$out"
}

snapshot BENCH_kernel.json \
    . '^(BenchmarkKernelExpand|BenchmarkSequentialJoin$)' \
    ./internal/geom/ '^(BenchmarkIntersectBatchPlanes(Quant)?$|BenchmarkSweepPairsPlanes(Dense)?$)'
snapshot BENCH_partjoin.json \
    . '^(BenchmarkPartitionJoin(Cold|ColdSkewed|Skewed|SkewedRefined|Introspected|Health)?$|BenchmarkNativeTreeJoin$)'

# Append one dated record per snapshot run to the machine-readable bench
# history (docs/bench_history.jsonl), so the perf trajectory across PRs
# survives the snapshots' overwrites. One JSON object per line:
# timestamp, host context, and name -> ns/op for every benchmark in both
# snapshots. scripts/bench_history.sh pretty-prints the trail.
mkdir -p docs
GOOS_CPU=$(awk '
    /"goos"/ { if (match($0, /"goos": *"[^"]*"/)) { s = substr($0, RSTART, RLENGTH); gsub(/"goos": *"|"/, "", s); goos = s } }
    /"cpu"/  { if (match($0, /"cpu": *"[^"]*"/))  { s = substr($0, RSTART, RLENGTH); gsub(/"cpu": *"|"/, "", s); cpu = s } }
    END { printf "\"goos\": \"%s\", \"cpu\": \"%s\"", goos, cpu }
' BENCH_kernel.json)
{
    printf '{"date": "%s", %s, "kernel": "%s", "uname": "%s", "benchtime": "%s", "ns_per_op": {' \
        "$(date -u +%Y-%m-%dT%H:%M:%SZ)" "$GOOS_CPU" "$KERNEL" "$(uname -sr)" "$BENCHTIME"
    awk '
        /"name"/ {
            if (match($0, /"name": *"[^"]*"/)) {
                name = substr($0, RSTART, RLENGTH); gsub(/"name": *"|"/, "", name)
            }
            if (match($0, /"ns_per_op": *[0-9.]+/)) {
                ns = substr($0, RSTART+12, RLENGTH-12); gsub(/[: ]/, "", ns)
                printf "%s\"%s\": %s", (n++ ? ", " : ""), name, ns
            }
        }
    ' BENCH_kernel.json BENCH_partjoin.json
    printf '}}\n'
} >> docs/bench_history.jsonl
echo "appended history record to docs/bench_history.jsonl ($(wc -l < docs/bench_history.jsonl) records)"
