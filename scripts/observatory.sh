#!/bin/sh
# Observatory gate. Records a run store at the requested scale, machine-
# checks the paper's claims against it, verifies the committed measured
# tables of EXPERIMENTS.md still match the committed full-scale store, and
# proves run-to-run determinism with runsdiff. At scale 1.0 (the weekly CI
# job) the fresh store is additionally diffed digest-for-digest against the
# committed docs/observatory/runs.jsonl.
#
# Usage: scripts/observatory.sh [scale]     (default 0.1)
set -eu
cd "$(dirname "$0")/.."

SCALE="${1:-0.1}"
mkdir -p artifacts

echo "== record run store (scale $SCALE) =="
go run ./cmd/experiments -scale "$SCALE" -run all -out artifacts/runs-ci.jsonl \
    > artifacts/observatory_run.txt

echo "== machine-check paper claims =="
# No pipe here: under plain sh a `check | tee` pipeline would exit with
# tee's status and let claim failures through the gate.
check_status=0
go run ./cmd/experiments -check artifacts/runs-ci.jsonl \
    > artifacts/claims_report.txt || check_status=$?
cat artifacts/claims_report.txt
if [ "$check_status" -ne 0 ]; then
    echo "paper claim check failed (exit $check_status)" >&2
    exit "$check_status"
fi

echo "== committed tables vs committed store =="
out="$(go run ./cmd/experiments -regen docs/observatory/runs.jsonl)"
echo "$out"
case "$out" in
*"already up to date"*) ;;
*)
    echo "EXPERIMENTS.md measured sections drifted from docs/observatory/runs.jsonl" >&2
    echo "(run 'make experiments-regen' and commit the result)" >&2
    exit 1
    ;;
esac

echo "== run-to-run determinism (fig7, runsdiff -digests) =="
go run ./cmd/experiments -scale "$SCALE" -run fig7 -out artifacts/runs-det-a.jsonl >/dev/null
go run ./cmd/experiments -scale "$SCALE" -run fig7 -out artifacts/runs-det-b.jsonl >/dev/null
go run ./cmd/runsdiff -digests artifacts/runs-det-a.jsonl artifacts/runs-det-b.jsonl

case "$SCALE" in
1 | 1.0)
    echo "== fresh full-scale store vs committed store =="
    go run ./cmd/runsdiff -digests artifacts/runs-ci.jsonl docs/observatory/runs.jsonl
    ;;
esac

echo "observatory gate passed (scale $SCALE)"
