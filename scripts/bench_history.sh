#!/bin/sh
# Pretty-prints the benchmark history trail (docs/bench_history.jsonl,
# appended by scripts/bench_snapshot.sh): one table per benchmark showing
# ns/op over time, so the perf trajectory across PRs is readable at a
# glance.
#
# Usage: scripts/bench_history.sh [benchmark-name-substring]
set -eu
cd "$(dirname "$0")/.."

HISTORY=docs/bench_history.jsonl
[ -f "$HISTORY" ] || { echo "bench_history: no $HISTORY yet (run make bench-snapshot)" >&2; exit 1; }

FILTER="${1:-}"

awk -v filter="$FILTER" '
    {
        date = ""; kernel = ""
        if (match($0, /"date": *"[^"]*"/)) {
            date = substr($0, RSTART, RLENGTH); gsub(/"date": *"|"/, "", date)
        }
        if (match($0, /"kernel": *"[^"]*"/)) {
            kernel = substr($0, RSTART, RLENGTH); gsub(/"kernel": *"|"/, "", kernel)
        }
        # Walk every "Benchmark...": N pair in the ns_per_op object.
        line = $0
        while (match(line, /"Benchmark[^"]*": *[0-9.]+/)) {
            pair = substr(line, RSTART, RLENGTH)
            line = substr(line, RSTART + RLENGTH)
            name = pair; sub(/": .*/, "", name); sub(/^"/, "", name)
            ns = pair; sub(/.*": */, "", ns)
            if (filter != "" && index(name, filter) == 0) continue
            if (!(name in seen)) { seen[name] = 1; names[nn++] = name }
            key = name SUBSEP nrec[name]
            dates[key] = date; kernels[key] = kernel; values[key] = ns
            nrec[name]++
        }
    }
    END {
        if (nn == 0) {
            print "bench_history: no matching benchmarks" > "/dev/stderr"
            exit 1
        }
        for (i = 0; i < nn; i++) {
            name = names[i]
            printf "%s\n", name
            prev = ""
            for (r = 0; r < nrec[name]; r++) {
                key = name SUBSEP r
                delta = ""
                if (prev != "" && prev + 0 > 0)
                    delta = sprintf("  (%+.1f%%)", (values[key] - prev) * 100.0 / prev)
                printf "  %-22s %-8s %12.0f ns/op%s\n", dates[key], kernels[key], values[key], delta
                prev = values[key]
            }
            printf "\n"
        }
    }
' "$HISTORY"
