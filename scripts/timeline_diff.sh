#!/bin/sh
# Compares the seed workload's critical-path attribution against the
# committed snapshot in testdata/critical_path_seed.txt. Fails when any span
# kind's share of the response time shifts by more than the tolerance (in
# percentage points, default 2.0) — the load-balance analogue of the golden
# metrics: a scheduling or cost-model change that silently moves time
# between disk-wait, cpu-sweep and idle shows up here.
#
# Usage: scripts/timeline_diff.sh [tolerance-points] [update]
#        (the literal word "update" rewrites the snapshot; commit the result)
set -eu
cd "$(dirname "$0")/.."

TOLERANCE="${1:-2.0}"
SNAP=testdata/critical_path_seed.txt

line=$(go run ./cmd/spjoin -scale 0.02 -seed 42 -procs 8 -disks 8 -buffer 16 \
    -variant gd -report | grep '^critical-path:')

if [ "${2:-}" = "update" ]; then
    printf '%s\n' "$line" > "$SNAP"
    echo "timeline_diff: rewrote $SNAP"
    exit 0
fi

[ -f "$SNAP" ] || {
    echo "timeline_diff: missing $SNAP (run: scripts/timeline_diff.sh $TOLERANCE update)" >&2
    exit 1
}

echo "timeline_diff: fresh:    $line"
echo "timeline_diff: snapshot: $(cat "$SNAP")"

printf '%s\n%s\n' "$line" "$(cat "$SNAP")" | awk -v tol="$TOLERANCE" '
NR == 1 { for (i = 2; i <= NF; i++) { split($i, kv, "="); sub(/%/, "", kv[2]); fresh[kv[1]] = kv[2] } }
NR == 2 { for (i = 2; i <= NF; i++) { split($i, kv, "="); sub(/%/, "", kv[2]); base[kv[1]] = kv[2]; kinds[kv[1]] = 1 } }
END {
    for (k in fresh) kinds[k] = 1
    fail = 0
    for (k in kinds) {
        d = fresh[k] - base[k]   # a kind missing on one side counts as 0%
        if (d < 0) d = -d
        if (d > tol) {
            printf "timeline_diff: %s shifted %.1f points (%.1f%% -> %.1f%%, tolerance %.1f)\n",
                k, d, base[k] + 0, fresh[k] + 0, tol
            fail = 1
        }
    }
    exit fail
}'
echo "timeline_diff: attribution within $TOLERANCE points of the snapshot"
