#!/bin/sh
# CI smoke for the runtime health observatory: run the clustered (skewed)
# cold partition join with health sampling enabled, poll the live-progress
# endpoint while the join repeats, and assert that
#
#   * the EXPLAIN report carries a well-formed "runtime health" section
#     attributing wall time across work / gc-pause / sched-delay /
#     contention,
#   * /debug/joins/live served at least one in-flight progress snapshot
#     with the unit counters populated,
#   * /metrics exported the runtimeobs.* series once a sampled join was
#     recorded.
#
# Artifacts (EXPLAIN report, live-progress captures, OpenMetrics dump,
# metrics snapshot) are left in the output directory for upload.
#
# Usage: scripts/health_smoke.sh [outdir]   (default: artifacts)
set -eux
cd "$(dirname "$0")/.."

OUT="${1:-artifacts}"
mkdir -p "$OUT"

BIN="$OUT/spjoin.smoke"
go build -o "$BIN" ./cmd/spjoin

# Skewed cold workload, repeated so the debug endpoints have an in-flight
# join to report while we poll. -pprof on an ephemeral port; the chosen
# address is printed on the first line of output.
"$BIN" -dist gauss -engine partition -scale 0.3 -seed 7 -procs 4 \
    -explain -repeat 40 -pprof 127.0.0.1:0 \
    -metrics "$OUT/health_metrics.json" > "$OUT/health_explain.txt" 2>&1 &
PID=$!
trap 'kill "$PID" 2>/dev/null || true' EXIT

# Wait for the debug server to announce its address.
ADDR=""
i=0
while [ "$i" -lt 100 ]; do
    ADDR=$(sed -n 's|^pprof/expvar on http://\([^/]*\)/.*|\1|p' "$OUT/health_explain.txt")
    [ -n "$ADDR" ] && break
    kill -0 "$PID" 2>/dev/null || { echo "health_smoke: spjoin exited before serving debug endpoints" >&2; cat "$OUT/health_explain.txt" >&2; exit 1; }
    sleep 0.1
    i=$((i + 1))
done
[ -n "$ADDR" ] || { echo "health_smoke: no -pprof address announced" >&2; exit 1; }

# Poll the live endpoint until we catch an in-flight join, and the
# OpenMetrics endpoint until the runtimeobs series appear (they export
# after the first sampled join is recorded). Every live capture is
# appended to the run log; the first non-empty one is kept as the
# representative snapshot.
: > "$OUT/health_live_run.txt"
LIVE_OK=0
METRICS_OK=0
while kill -0 "$PID" 2>/dev/null; do
    LIVE=$(curl -sf "http://$ADDR/debug/joins/live" || true)
    if [ -n "$LIVE" ]; then
        echo "$LIVE" >> "$OUT/health_live_run.txt"
        if [ "$LIVE_OK" = 0 ] && [ "$LIVE" != "[]" ]; then
            echo "$LIVE" > "$OUT/health_live.json"
            LIVE_OK=1
        fi
    fi
    if [ "$METRICS_OK" = 0 ]; then
        if curl -sf "http://$ADDR/metrics" | tee "$OUT/health_openmetrics.txt" | grep -q '^runtimeobs_windows'; then
            METRICS_OK=1
        fi
    fi
    [ "$LIVE_OK" = 1 ] && [ "$METRICS_OK" = 1 ] && break
    sleep 0.05
done
wait "$PID"
trap - EXIT

[ "$LIVE_OK" = 1 ] || { echo "health_smoke: never caught an in-flight join on /debug/joins/live" >&2; exit 1; }
[ "$METRICS_OK" = 1 ] || { echo "health_smoke: runtimeobs.* series never appeared on /metrics" >&2; exit 1; }

# The live snapshot must be a progress record with populated counters.
grep -q '"engine": *"partition"' "$OUT/health_live.json"
grep -q '"units_done"' "$OUT/health_live.json"
grep -q '"cost_total"' "$OUT/health_live.json"

# The EXPLAIN report must carry the full runtime-health section.
grep 'runtime health (' "$OUT/health_explain.txt"
grep '^  work ' "$OUT/health_explain.txt"
grep '^  gc-pause ' "$OUT/health_explain.txt"
grep '^  sched-delay ' "$OUT/health_explain.txt"
grep '^  contention ' "$OUT/health_explain.txt"
grep '^  goroutines: ' "$OUT/health_explain.txt"

# And the exported gauges include the attribution shares.
grep -q '^runtimeobs_work_share' "$OUT/health_openmetrics.txt"
grep -q '^runtimeobs_gc_pause_share' "$OUT/health_openmetrics.txt"

echo "health_smoke: OK (artifacts in $OUT)"
