#!/bin/sh
# Compares fresh benchmark runs against the committed snapshots
# (BENCH_kernel.json and BENCH_partjoin.json). Fails when any benchmark's
# ns/op regresses by more than the tolerance (default 10%), or when
# allocs/op grows at all — the zero-allocation contracts admit no slack.
# Wall-clock numbers wobble with the host, hence the generous default
# tolerance; allocation counts do not.
#
# A snapshot taken under a different kernel dispatch (avx2 vs purego) or a
# different benchtime is not comparable — the script refuses rather than
# reporting a bogus regression.
#
# Usage: scripts/bench_diff.sh [tolerance-percent] [benchtime]
set -eu
cd "$(dirname "$0")/.."

TOLERANCE="${1:-10}"
BENCHTIME="${2:-1000x}"
FRESH=$(mktemp)
trap 'rm -f "$FRESH"' EXIT

KERNEL=$(go run ./cmd/spjoin -printkernel)

fail=0

# check_context BASE — refuse to diff against a snapshot whose recorded
# kernel dispatch or benchtime does not match this run's.
check_context() {
    base="$1"
    base_kernel=$(awk '/"kernel"/ { if (match($0, /"kernel": *"[^"]*"/)) {
        s = substr($0, RSTART, RLENGTH); gsub(/"kernel": *"|"/, "", s); print s } }' "$base")
    base_benchtime=$(awk '/"benchtime"/ { if (match($0, /"benchtime": *"[^"]*"/)) {
        s = substr($0, RSTART, RLENGTH); gsub(/"benchtime": *"|"/, "", s); print s } }' "$base")
    if [ -n "$base_kernel" ] && [ "$base_kernel" != "$KERNEL" ]; then
        echo "bench_diff: $base was taken under kernel '$base_kernel' but this run dispatches '$KERNEL' — not comparable (re-snapshot or match the kernel)" >&2
        fail=1
        return 1
    fi
    if [ -n "$base_benchtime" ] && [ "$base_benchtime" != "$BENCHTIME" ]; then
        echo "bench_diff: $base was taken with benchtime $base_benchtime but this run uses $BENCHTIME — not comparable" >&2
        fail=1
        return 1
    fi
    return 0
}

diff_suite() {
    base="$1"; shift

    [ -f "$base" ] || { echo "bench_diff: missing $base (run make bench-snapshot)" >&2; fail=1; return; }
    check_context "$base" || return 0

    {
        while [ "$#" -gt 0 ]; do
            go test -run='^$' -bench="$2" -benchmem -benchtime="$BENCHTIME" "$1"
            shift 2
        done
    } |
    awk '
        /^Benchmark/ {
            name = $1
            sub(/-[0-9]+$/, "", name)
            for (i = 2; i < NF; i++) {
                if ($(i+1) == "ns/op")     ns[name] = $i
                if ($(i+1) == "allocs/op") allocs[name] = $i
            }
            order[n++] = name
        }
        END {
            for (i = 0; i < n; i++)
                printf "%s %s %s\n", order[i], ns[order[i]], allocs[order[i]]
        }
    ' > "$FRESH"

    [ -s "$FRESH" ] || { echo "bench_diff: no benchmark output for $base" >&2; fail=1; return; }

    while read -r name fresh_ns fresh_allocs; do
        base_ns=$(awk -v n="$name" '
            /"name"/ && index($0, "\"" n "\"") {
                if (match($0, /"ns_per_op": *[0-9.]+/))
                    print substr($0, RSTART+12, RLENGTH-12)
            }' "$base" | tr -d ': ')
        base_allocs=$(awk -v n="$name" '
            /"name"/ && index($0, "\"" n "\"") {
                if (match($0, /"allocs_per_op": *[0-9]+/))
                    print substr($0, RSTART+16, RLENGTH-16)
            }' "$base" | tr -d ': ')
        if [ -z "$base_ns" ] || [ -z "$base_allocs" ]; then
            echo "bench_diff: $name missing from $base (run make bench-snapshot)" >&2
            fail=1
            continue
        fi
        over=$(awk -v f="$fresh_ns" -v b="$base_ns" -v tol="$TOLERANCE" \
            'BEGIN { print (f > b * (1 + tol/100)) ? 1 : 0 }')
        if [ "$over" = 1 ]; then
            echo "bench_diff: $name regressed: $fresh_ns ns/op vs $base_ns ns/op baseline (+${TOLERANCE}% allowed)" >&2
            fail=1
        else
            echo "bench_diff: $name ok: $fresh_ns ns/op (baseline $base_ns, +${TOLERANCE}% allowed)"
        fi
        if [ "$fresh_allocs" -gt "$base_allocs" ]; then
            echo "bench_diff: $name allocations regressed: $fresh_allocs allocs/op vs $base_allocs baseline" >&2
            fail=1
        fi
    done < "$FRESH"
}

diff_suite BENCH_kernel.json \
    . '^(BenchmarkKernelExpand|BenchmarkSequentialJoin$)' \
    ./internal/geom/ '^(BenchmarkIntersectBatchPlanes(Quant)?$|BenchmarkSweepPairsPlanes(Dense)?$)'
diff_suite BENCH_partjoin.json \
    . '^(BenchmarkPartitionJoin(Cold|ColdSkewed|Skewed|SkewedRefined|Introspected|Health)?$|BenchmarkNativeTreeJoin$)'

exit "$fail"
