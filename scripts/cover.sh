#!/bin/sh
# Runs the test suite with coverage and enforces the floor CI requires.
# The floor is total statement coverage across all packages; per-package
# numbers are printed for orientation.
#
# Usage: scripts/cover.sh [floor-percent]
set -eu
cd "$(dirname "$0")/.."

# The mains under cmd/ and examples/ run uninstrumented, so the whole-repo
# total sits well under the per-library numbers (mostly 85-100%).
FLOOR="${1:-75}"
PROFILE=$(mktemp)
trap 'rm -f "$PROFILE"' EXIT

go test -coverprofile="$PROFILE" ./...

TOTAL=$(go tool cover -func="$PROFILE" | awk '/^total:/ { sub(/%/, "", $3); print $3 }')
echo "total statement coverage: ${TOTAL}% (floor ${FLOOR}%)"
awk -v total="$TOTAL" -v floor="$FLOOR" \
    'BEGIN { exit (total + 0 < floor + 0) ? 1 : 0 }' || {
    echo "cover: total coverage ${TOTAL}% below the ${FLOOR}% floor" >&2
    exit 1
}
