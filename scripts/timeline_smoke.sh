#!/bin/sh
# CI smoke for the span profiler: run the seed workload with -timeline and
# -report, validate the Perfetto export against the trace-event schema with
# cmd/tracecheck, and leave both the trace and the critical-path report in
# the output directory for upload as workflow artifacts.
#
# Usage: scripts/timeline_smoke.sh [outdir]   (default: artifacts)
set -eux
cd "$(dirname "$0")/.."

OUT="${1:-artifacts}"
mkdir -p "$OUT"

go run ./cmd/spjoin -scale 0.02 -seed 42 -procs 8 -disks 8 -buffer 16 -variant gd \
    -timeline "$OUT/seed_timeline.json" -report > "$OUT/critical_path_report.txt"
go run ./cmd/tracecheck "$OUT/seed_timeline.json"
grep '^critical-path:' "$OUT/critical_path_report.txt"
