#!/bin/sh
# CI smoke for the join introspection layer: run spjoin -explain over the
# corpus workloads (planner-picked partition join, forced partition join,
# native tree join), validate each exported wall-clock Perfetto trace with
# cmd/tracecheck, and leave the EXPLAIN reports, traces and the tile-cost
# heatmap SVG in the output directory for upload as workflow artifacts.
#
# Usage: scripts/introspect_smoke.sh [outdir]   (default: artifacts)
set -eux
cd "$(dirname "$0")/.."

OUT="${1:-artifacts}"
mkdir -p "$OUT"

# Planner-driven run: the report must show the captured auto plan with the
# driving statistics, the phase waterfall, and the tile-cost sections.
go run ./cmd/spjoin -scale 0.02 -seed 42 -engine auto -explain \
    -timeline "$OUT/wall_auto.json" -explain-svg "$OUT/heat_auto.svg" \
    > "$OUT/explain_auto.txt"
go run ./cmd/tracecheck "$OUT/wall_auto.json"
grep 'plan (auto):' "$OUT/explain_auto.txt"
grep 'phases (measured' "$OUT/explain_auto.txt"
grep 'tile cost heat' "$OUT/explain_auto.txt"
grep -q '^<svg xmlns=' "$OUT/heat_auto.svg"

# Forced partition run at a fixed grid, with the clustered seed.
go run ./cmd/spjoin -scale 0.05 -seed 7 -engine partition -procs 4 -grid 24 \
    -explain -timeline "$OUT/wall_partition.json" > "$OUT/explain_partition.txt"
go run ./cmd/tracecheck "$OUT/wall_partition.json"
grep 'plan (forced): engine=partition' "$OUT/explain_partition.txt"
grep 'workers (pairs):' "$OUT/explain_partition.txt"

# Native tree run: steals and the sweep-dominated waterfall.
go run ./cmd/spjoin -scale 0.05 -seed 42 -native -procs 4 \
    -explain -timeline "$OUT/wall_tree.json" > "$OUT/explain_tree.txt"
go run ./cmd/tracecheck "$OUT/wall_tree.json"
grep 'engine=tree' "$OUT/explain_tree.txt"
grep 'tree: tasks=' "$OUT/explain_tree.txt"

# Slowlog path: a 1ns threshold fires on any join.
go run ./cmd/spjoin -scale 0.02 -seed 42 -engine partition -slowlog 1ns \
    > "$OUT/slowlog.txt"
grep 'slowlog: join exceeded' "$OUT/slowlog.txt"
