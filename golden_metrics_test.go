package spjoin

// Golden-metrics regression harness: the metrics Registry's view of the
// seed workload is captured byte-for-byte in testdata/golden_metrics.json.
// Any change to the simulator, the buffer manager, the join kernel or the
// metrics plumbing that shifts a counter fails this test; intentional
// changes regenerate the file with
//
//	go test -run TestGoldenMetrics -update .
//
// and the new snapshot is reviewed in the diff like any other code change.

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"spjoin/internal/exp"
	"spjoin/internal/join"
	"spjoin/internal/metrics"
	"spjoin/internal/parjoin"
	"spjoin/internal/parnative"
)

var updateGolden = flag.Bool("update", false, "rewrite testdata/golden_metrics.json")

// goldenScale/goldenSeed pin the workload; goldenProcs etc. the machine.
// These are the bench_test.go settings, so the figures below also appear in
// BENCH snapshots.
const (
	goldenScale       = 0.02
	goldenSeed        = 42
	goldenProcs       = 8
	goldenDisks       = 8
	goldenBufferFull  = 800 // full-scale pages; Workload.Pages scales them
	goldenTaskBudget  = 24  // native task-creation budget, constant across worker counts
	goldenWorkerSweep = "1/2/4/8"
)

// goldenVariant is one simulated run's registry figures.
type goldenVariant struct {
	Variant       string `json:"variant"`
	DiskAccesses  int64  `json:"disk_accesses"`
	DataDisk      int64  `json:"data_disk_accesses"`
	VirtualS      string `json:"virtual_s"`
	Candidates    int64  `json:"candidates"`
	PairsExpanded int64  `json:"pairs_expanded"`
	BufferMisses  int64  `json:"buffer_misses"`
	LocalHits     int64  `json:"local_hits"`
	RemoteHits    int64  `json:"remote_hits"`
}

// goldenMetrics is the committed snapshot layout. Struct fields (not maps)
// keep the JSON field order fixed, so encoding is deterministic.
type goldenMetrics struct {
	Scale                 float64         `json:"scale"`
	Seed                  int64           `json:"seed"`
	Procs                 int             `json:"procs"`
	Disks                 int             `json:"disks"`
	BufferPages           int             `json:"buffer_pages"`
	Comparisons           int64           `json:"comparisons"`
	ComparisonsNoRestrict int64           `json:"comparisons_no_restriction"`
	Variants              []goldenVariant `json:"variants"`
}

func goldenWorkload(tb testing.TB) *exp.Workload {
	tb.Helper()
	return exp.NewWorkload(goldenScale, goldenSeed)
}

// collectGolden reproduces every figure of the snapshot from the metrics
// Registry — deliberately not from the simulator's own Result fields, so
// the harness exercises the full instrumentation path.
func collectGolden(tb testing.TB, w *exp.Workload) goldenMetrics {
	tb.Helper()
	pages := w.Pages(goldenBufferFull, goldenProcs)
	g := goldenMetrics{
		Scale: goldenScale, Seed: goldenSeed,
		Procs: goldenProcs, Disks: goldenDisks, BufferPages: pages,
	}
	for _, v := range []string{"lsr", "gsrr", "gd"} {
		reg := metrics.NewRegistry()
		cfg := parjoin.DefaultConfig(goldenProcs, goldenDisks, pages).Variant(v)
		cfg.Metrics = reg
		parjoin.Run(w.R, w.S, cfg)
		snap := reg.Snapshot()
		g.Variants = append(g.Variants, goldenVariant{
			Variant:       v,
			DiskAccesses:  snap.Counters["sim.disk.reads.directory"] + snap.Counters["sim.disk.reads.data"],
			DataDisk:      snap.Counters["sim.disk.reads.data"],
			VirtualS:      fmt.Sprintf("%.3f", snap.Gauges["sim.response_s"]),
			Candidates:    snap.Counters["sim.join.candidates"],
			PairsExpanded: snap.Counters["sim.join.pairs_expanded"],
			BufferMisses:  snap.Counters["sim.buffer.misses"],
			LocalHits:     snap.Counters["sim.buffer.local_hits"],
			RemoteHits:    snap.Counters["sim.buffer.remote_hits"],
		})
	}
	g.Comparisons = sequentialComparisons(w, join.Options{})
	g.ComparisonsNoRestrict = sequentialComparisons(w, join.Options{DisableRestriction: true})
	return g
}

// sequentialComparisons counts the whole sequential join's rectangle
// comparisons through a registry-backed join.Metrics on the Engine.
func sequentialComparisons(w *exp.Workload, opts join.Options) int64 {
	reg := metrics.NewRegistry()
	root, ok := join.RootPair(w.R, w.S)
	if !ok {
		return 0
	}
	e := join.Engine{
		Src:  join.DirectSource{R: w.R, S: w.S},
		Opts: opts,
		Met:  join.NewMetrics(reg, "seq"),
	}
	e.Run(root)
	return reg.Snapshot().Counters["seq.comparisons"]
}

func goldenPath() string { return filepath.Join("testdata", "golden_metrics.json") }

func marshalGolden(tb testing.TB, g goldenMetrics) []byte {
	tb.Helper()
	data, err := json.MarshalIndent(g, "", "  ")
	if err != nil {
		tb.Fatal(err)
	}
	return append(data, '\n')
}

// TestGoldenMetrics compares the Registry-reproduced snapshot against the
// committed golden file byte-for-byte.
func TestGoldenMetrics(t *testing.T) {
	w := goldenWorkload(t)
	got := marshalGolden(t, collectGolden(t, w))
	if *updateGolden {
		if err := os.MkdirAll(filepath.Dir(goldenPath()), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenPath(), got, 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s", goldenPath())
		return
	}
	want, err := os.ReadFile(goldenPath())
	if err != nil {
		t.Fatalf("missing golden file (run with -update to create): %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("metrics snapshot diverged from %s (run with -update if intentional)\ngot:\n%s\nwant:\n%s",
			goldenPath(), got, want)
	}
}

// TestGoldenMetricsPinned spells out the headline seed figures in code, so
// a bad -update cannot silently shift them: per-variant disk accesses and
// virtual response times, and the sequential comparison counts with and
// without the search-space restriction.
func TestGoldenMetricsPinned(t *testing.T) {
	w := goldenWorkload(t)
	g := collectGolden(t, w)
	wantDisk := map[string]int64{"lsr": 576, "gsrr": 346, "gd": 334}
	wantVirt := map[string]string{"lsr": "4.465", "gsrr": "2.880", "gd": "2.691"}
	for _, v := range g.Variants {
		if v.DiskAccesses != wantDisk[v.Variant] {
			t.Errorf("%s: disk accesses %d, want %d", v.Variant, v.DiskAccesses, wantDisk[v.Variant])
		}
		if v.VirtualS != wantVirt[v.Variant] {
			t.Errorf("%s: virtual seconds %s, want %s", v.Variant, v.VirtualS, wantVirt[v.Variant])
		}
		if v.Candidates != 56 {
			t.Errorf("%s: candidates %d, want 56", v.Variant, v.Candidates)
		}
	}
	if g.Comparisons != 17443 {
		t.Errorf("sequential comparisons %d, want 17443", g.Comparisons)
	}
	if g.ComparisonsNoRestrict != 4597 {
		t.Errorf("unrestricted comparisons %d, want 4597", g.ComparisonsNoRestrict)
	}
}

// TestGoldenMetricsAcrossWorkers runs the native executor at worker counts
// 1/2/4/8 with a constant task-creation budget and asserts the Registry
// reports identical scheduling-independent figures at every count — the
// same pairs expanded, comparisons and candidates, with the candidate count
// matching the simulated golden figure. Work distribution may differ; the
// work itself must not.
func TestGoldenMetricsAcrossWorkers(t *testing.T) {
	w := goldenWorkload(t)
	type figures struct{ pairs, comparisons, candidates int64 }
	var base figures
	for i, workers := range []int{1, 2, 4, 8} {
		reg := metrics.NewRegistry()
		res := parnative.Join(w.R, w.S, parnative.Config{
			Workers:    workers,
			TaskFactor: goldenTaskBudget / workers,
			Metrics:    reg,
		})
		snap := reg.Snapshot()
		got := figures{
			pairs:       snap.Counters["native.join.pairs_expanded"],
			comparisons: snap.Counters["native.join.comparisons"],
			candidates:  snap.Counters["native.join.candidates"],
		}
		if got.candidates != int64(len(res.Candidates)) {
			t.Fatalf("workers=%d: registry candidates %d, result %d",
				workers, got.candidates, len(res.Candidates))
		}
		if got.candidates != 56 {
			t.Errorf("workers=%d: candidates %d, want the golden 56", workers, got.candidates)
		}
		if i == 0 {
			base = got
			continue
		}
		if got != base {
			t.Errorf("workers=%d: figures %+v differ from workers=1 baseline %+v (%s sweep must agree)",
				workers, got, base, goldenWorkerSweep)
		}
	}
}
