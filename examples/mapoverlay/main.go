// Mapoverlay answers the paper's motivating query — "find all forests which
// are in a city" — over two synthetic relations: city polygons and forest
// polygons (both approximated by their MBRs in the filter step, refined by
// an exact area-overlap test afterwards).
//
// The example demonstrates the two-step architecture of §2.1: the R*-tree
// filter join produces candidates; the refinement step eliminates false
// hits with exact geometry.
package main

import (
	"fmt"
	"math/rand"

	"spjoin"
)

// city and forest carry the "exact geometry" of this example: an
// axis-parallel polygon approximated here by its rectangle. Real systems
// would store arbitrary polygons; the refinement logic is the same.
type region struct {
	id   spjoin.ID
	rect spjoin.Rect
}

func main() {
	rng := rand.New(rand.NewSource(7))

	// 400 cities: medium rectangles scattered over a 1000×1000 map.
	cities := make([]region, 400)
	cityItems := make([]spjoin.Item, len(cities))
	for i := range cities {
		x, y := rng.Float64()*1000, rng.Float64()*1000
		w, h := 5+rng.Float64()*25, 5+rng.Float64()*25
		cities[i] = region{id: spjoin.ID(i), rect: spjoin.NewRect(x, y, x+w, y+h)}
		cityItems[i] = spjoin.Item{ID: cities[i].id, Rect: cities[i].rect}
	}

	// 3000 forests: small patches.
	forests := make([]region, 3000)
	forestItems := make([]spjoin.Item, len(forests))
	for i := range forests {
		x, y := rng.Float64()*1000, rng.Float64()*1000
		w, h := 1+rng.Float64()*6, 1+rng.Float64()*6
		forests[i] = region{id: spjoin.ID(i), rect: spjoin.NewRect(x, y, x+w, y+h)}
		forestItems[i] = spjoin.Item{ID: forests[i].id, Rect: forests[i].rect}
	}

	cityTree := spjoin.Build(cityItems)
	forestTree := spjoin.Build(forestItems)

	// Filter step: candidate (city, forest) pairs with intersecting MBRs.
	candidates := spjoin.JoinParallel(cityTree, forestTree, 0)

	// Refinement step: a forest is "in" a city when the city polygon fully
	// contains it. MBR intersection admits false hits (partial overlaps).
	type answer struct{ city, forest spjoin.ID }
	var answers []answer
	falseHits := 0
	for _, c := range candidates {
		if cities[c.R].rect.Contains(forests[c.S].rect) {
			answers = append(answers, answer{city: c.R, forest: c.S})
		} else {
			falseHits++
		}
	}

	fmt.Printf("cities: %d, forests: %d\n", len(cities), len(forests))
	fmt.Printf("filter step:     %d candidates\n", len(candidates))
	fmt.Printf("refinement step: %d answers, %d false hits (%.0f%% filtered)\n",
		len(answers), falseHits, 100*float64(falseHits)/float64(len(candidates)))
	for i, a := range answers {
		if i == 5 {
			break
		}
		fmt.Printf("  forest %4d lies inside city %3d\n", a.forest, a.city)
	}
}
