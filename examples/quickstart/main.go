// Quickstart: build two R*-trees over the synthetic TIGER-like maps and
// compute the spatial join (filter step) in parallel.
package main

import (
	"fmt"

	"spjoin"
)

func main() {
	// Two spatial relations at 1% of the paper's cardinality: ~1300 street
	// segments, ~1300 boundary/river/railway features.
	streets, features := spjoin.SampleMaps(0.01, 42)
	fmt.Printf("relation R: %d street segments\n", len(streets))
	fmt.Printf("relation S: %d mixed features\n", len(features))

	// Build the R*-trees (dynamic insertion, like the paper).
	r := spjoin.Build(streets)
	s := spjoin.Build(features)
	fmt.Printf("R*-trees built: heights %d and %d\n", r.Height(), s.Height())

	// Parallel spatial join: all pairs of objects whose MBRs intersect.
	// 0 workers means "use every CPU".
	pairs := spjoin.JoinParallel(r, s, 0)
	fmt.Printf("filter step found %d candidate pairs\n", len(pairs))

	// Show a few results.
	for i, c := range pairs {
		if i == 5 {
			break
		}
		fmt.Printf("  street %4d  ×  feature %4d   MBRs %v ∩ %v\n",
			c.R, c.S, c.RRect, c.SRect)
	}

	// Cross-check against the sequential algorithm of [BKS 93].
	if seq := spjoin.Join(r, s); len(seq) != len(pairs) {
		panic("parallel and sequential joins disagree")
	}
	fmt.Println("sequential cross-check passed")
}
