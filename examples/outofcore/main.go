// Outofcore persists two R*-trees into real 4 KB-paged files and joins them
// out-of-core: every node access goes through a pinning LRU buffer pool
// over actual file I/O — the disk-resident setting the paper assumes,
// with real reads instead of the simulator's cost model.
package main

import (
	"fmt"
	"os"
	"path/filepath"

	"spjoin"
)

func main() {
	streets, features := spjoin.SampleMaps(0.05, 42)
	r := spjoin.BuildSTR(streets, 0.73)
	s := spjoin.BuildSTR(features, 0.73)

	dir, err := os.MkdirTemp("", "spjoin-outofcore")
	if err != nil {
		panic(err)
	}
	defer os.RemoveAll(dir)
	rPath := filepath.Join(dir, "streets.spjf")
	sPath := filepath.Join(dir, "features.spjf")

	if err := spjoin.SaveTree(r, rPath); err != nil {
		panic(err)
	}
	if err := spjoin.SaveTree(s, sPath); err != nil {
		panic(err)
	}
	ri, _ := os.Stat(rPath)
	si, _ := os.Stat(sPath)
	fmt.Printf("persisted trees: %s (%d KB), %s (%d KB)\n",
		filepath.Base(rPath), ri.Size()/1024, filepath.Base(sPath), si.Size()/1024)

	// Join with a buffer pool of only 64 pages per tree — far smaller than
	// the files — so the join really pages from disk.
	for _, frames := range []int{64, 1024} {
		pr, closeR, err := spjoin.OpenTree(rPath, frames)
		if err != nil {
			panic(err)
		}
		ps, closeS, err := spjoin.OpenTree(sPath, frames)
		if err != nil {
			panic(err)
		}
		pairs, reads, err := spjoin.JoinOutOfCore(pr, ps)
		if err != nil {
			panic(err)
		}
		fmt.Printf("pool %4d pages/tree: %d candidates, %d physical page reads\n",
			frames, len(pairs), reads)
		closeR()
		closeS()
	}

	// Cross-check against the in-memory join.
	inMem := spjoin.Join(r, s)
	fmt.Printf("in-memory cross-check: %d candidates\n", len(inMem))
}
