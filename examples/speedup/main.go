// Speedup reruns a miniature of the paper's Figure 9/10 experiment on the
// simulated shared-virtual-memory machine: response time and speed-up of
// the best parallel join variant as the number of processors (and disks)
// grows, with the buffer growing 100 pages per processor.
package main

import (
	"fmt"

	"spjoin"
)

func main() {
	const scale = 0.1 // 10% of the paper's cardinality keeps this instant
	streets, features := spjoin.SampleMaps(scale, 42)
	r := spjoin.BuildSTR(streets, 0.73)
	s := spjoin.BuildSTR(features, 0.73)
	fmt.Printf("workload: %d × %d objects\n\n", r.Len(), s.Len())

	procs := []int{1, 2, 4, 8, 12, 16, 24}
	fmt.Printf("%4s  %14s  %10s  %14s  %10s\n",
		"n", "t(n) d=n [s]", "speed-up", "t(n) d=1 [s]", "speed-up")

	var t1n, t11 float64
	for _, n := range procs {
		// d = n: one disk per processor (the paper's linear-speed-up case).
		buf := int(100 * float64(n) * scale)
		if buf < n {
			buf = n
		}
		dn := spjoin.Simulate(r, s, spjoin.DefaultSimConfig(n, n, buf))
		// d = 1: a single disk bottlenecks beyond ~4 processors.
		d1 := spjoin.Simulate(r, s, spjoin.DefaultSimConfig(n, 1, buf))
		if n == 1 {
			t1n = dn.ResponseTime.Seconds()
			t11 = d1.ResponseTime.Seconds()
		}
		fmt.Printf("%4d  %14.1f  %10.1f  %14.1f  %10.1f\n",
			n,
			dn.ResponseTime.Seconds(), t1n/dn.ResponseTime.Seconds(),
			d1.ResponseTime.Seconds(), t11/d1.ResponseTime.Seconds())
	}
	fmt.Println("\nthe d=n column keeps scaling; the d=1 column flattens once the disk saturates")
}
