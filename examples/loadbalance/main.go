// Loadbalance demonstrates the paper's §3.4/§4.4 result: with static task
// assignment, some processors finish long before others; task reassignment
// lets idle processors take over part of a loaded processor's work, pulling
// the last finisher in — at almost no extra total work.
package main

import (
	"fmt"

	"spjoin"
)

func main() {
	streets, features := spjoin.SampleMaps(0.1, 42)
	r := spjoin.BuildSTR(streets, 0.73)
	s := spjoin.BuildSTR(features, 0.73)

	fmt.Println("local buffers, static range assignment (lsr), 8 processors / 8 disks")
	fmt.Printf("%-12s  %10s  %10s  %10s  %12s  %8s\n",
		"reassign", "first [s]", "avg [s]", "last [s]", "total work", "steals")

	for _, mode := range []struct {
		name string
		r    spjoin.Reassign
	}{
		{"none", spjoin.ReassignNone},
		{"root-level", spjoin.ReassignRoot},
		{"all-levels", spjoin.ReassignAll},
	} {
		cfg := spjoin.DefaultSimConfig(8, 8, 80)
		cfg.Buffer = spjoin.LocalBuffers
		cfg.Assign = spjoin.StaticRange
		cfg.Reassign = mode.r
		res := spjoin.Simulate(r, s, cfg)
		fmt.Printf("%-12s  %10.1f  %10.1f  %10.1f  %12.1f  %8d\n",
			mode.name,
			res.FirstFinish.Seconds(), res.AvgFinish.Seconds(),
			res.ResponseTime.Seconds(), res.TotalWork.Seconds(),
			res.Reassignments)
	}

	fmt.Println("\nthe response time (last finisher) drops as reassignment levels open up,")
	fmt.Println("while the total work stays nearly constant — load balancing is almost free")
}
