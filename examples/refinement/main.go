// Refinement runs the complete two-step spatial join of §2.1 on the
// synthetic maps with exact geometry: the R*-tree filter step produces
// candidate pairs of intersecting MBRs; the refinement step tests the exact
// geometries (segment × segment, segment × box) and eliminates the false
// hits. Both steps run in parallel, and — like in the paper — the worker
// that found a candidate also refines it.
package main

import (
	"fmt"
	"time"

	"spjoin"
)

func main() {
	streets, features := spjoin.SampleFeatures(0.05, 42)
	fmt.Printf("relations: %d street segments × %d boundary/river/railway features\n",
		len(streets), len(features))

	r := spjoin.BuildFeatures(streets)
	s := spjoin.BuildFeatures(features)

	// The refinement step needs the exact geometry per object id.
	streetShape := func(id spjoin.ID) spjoin.Shape { return streets[id].Shape }
	featureShape := func(id spjoin.ID) spjoin.Shape { return features[id].Shape }

	// Filter only (what the paper parallelizes and measures).
	t0 := time.Now()
	candidates := spjoin.JoinParallel(r, s, 0)
	filterTime := time.Since(t0)

	// Filter + refinement.
	t0 = time.Now()
	answers, falseHits := spjoin.JoinRefined(r, s, streetShape, featureShape, 0)
	totalTime := time.Since(t0)

	fmt.Printf("\nfilter step:      %6d candidates        (%v)\n", len(candidates), filterTime.Round(time.Millisecond))
	fmt.Printf("refinement step:  %6d exact answers\n", len(answers))
	fmt.Printf("                  %6d false hits (%.0f%% of candidates were MBR-only)\n",
		falseHits, 100*float64(falseHits)/float64(len(candidates)))
	fmt.Printf("total:            %v\n", totalTime.Round(time.Millisecond))

	if len(answers)+falseHits != len(candidates) {
		panic("refinement lost candidates")
	}

	fmt.Println("\nfirst answers (street id × feature id, exact geometries intersect):")
	for i, a := range answers {
		if i == 5 {
			break
		}
		fmt.Printf("  street %5d  ×  feature %5d\n", a.R, a.S)
	}
}
